package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkCtxPoll guards the cancellation discipline of the categorizer's
// fan-out (PR2 threaded context through the level loop; PR4 made the polls
// deadline-aware): every goroutine spawned in a fan-out package must reach a
// cancellation poll — ctxExpired, ctx.Err(), <-ctx.Done(), or
// faultinject.Inject — directly or through a function it calls. A worker
// that never polls keeps burning CPU after the request died, defeating both
// cancellation and the soft-budget degradation ladder.
var checkCtxPoll = &Check{
	Name: "ctxpoll",
	Doc:  "goroutines fanning out categorizer work must poll cancellation/deadline",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) {
	if !matchPkg(pass.Path, pass.Cfg.FanoutPkgs) {
		return
	}
	polls := newPollSet(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !polls.callPolls(g.Call) {
				pass.Reportf(g.Pos(), "goroutine never polls cancellation; call %s or ctx.Err() in its loop",
					pollName(pass.Cfg))
			}
			return true
		})
	}
}

func pollName(cfg *Config) string {
	if len(cfg.PollFuncs) > 0 {
		return cfg.PollFuncs[0]
	}
	return "ctx.Err"
}

// pollSet computes, to a fixpoint over the package, which functions
// (declarations and function-literal locals) transitively reach a
// cancellation poll.
type pollSet struct {
	pass   *Pass
	bodies map[types.Object]*ast.BlockStmt // declared funcs + local func-lit vars
	polls  map[types.Object]bool
}

func newPollSet(pass *Pass) *pollSet {
	ps := &pollSet{
		pass:   pass,
		bodies: make(map[types.Object]*ast.BlockStmt),
		polls:  make(map[types.Object]bool),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					ps.bodies[obj] = fd.Body
				}
			}
		}
		// Function literals bound to local variables (x := func() {...})
		// behave like named helpers in a fan-out loop.
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil {
					ps.bodies[obj] = lit.Body
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for obj, body := range ps.bodies {
			if !ps.polls[obj] && ps.bodyPolls(body) {
				ps.polls[obj] = true
				changed = true
			}
		}
	}
	return ps
}

// callPolls reports whether the go statement's callee reaches a poll: a
// function literal whose body polls, or a resolved function known to poll.
func (ps *pollSet) callPolls(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return ps.bodyPolls(fun.Body)
	case *ast.Ident:
		if obj := ps.pass.Info.Uses[fun]; obj != nil {
			return ps.polls[obj]
		}
	case *ast.SelectorExpr:
		if fn, ok := ps.pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return ps.polls[fn]
		}
	}
	return false
}

// bodyPolls reports whether the body syntactically contains a poll or a call
// to a known-polling function.
func (ps *pollSet) bodyPolls(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ps.isPollCall(call) || ps.callPolls(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isPollCall recognizes the approved poll forms: a configured poll function
// (ctxExpired), ctx.Err() / ctx.Done() on a context.Context, and
// faultinject.Inject (which polls the context at every site).
func (ps *pollSet) isPollCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		for _, p := range ps.pass.Cfg.PollFuncs {
			if fun.Name == p {
				return true
			}
		}
	case *ast.SelectorExpr:
		if (fun.Sel.Name == "Err" || fun.Sel.Name == "Done") && len(call.Args) == 0 {
			if tv, ok := ps.pass.Info.Types[fun.X]; ok && isContext(tv.Type) {
				return true
			}
		}
		if fn, ok := ps.pass.Info.Uses[fun.Sel].(*types.Func); ok {
			if fn.Name() == "Inject" && strings.Contains(funcPkgPath(fn), "faultinject") {
				return true
			}
			for _, p := range ps.pass.Cfg.PollFuncs {
				if fn.Name() == p {
					return true
				}
			}
		}
	}
	return false
}
