// Package treecache memoizes computed category trees for the serving path.
// It is a bounded LRU keyed by canonical query signature (plus technique,
// options, and workload-stats generation — the caller composes the key) with
// singleflight semantics: when N requests miss on the same key
// concurrently, one computes and the rest wait, so a thundering herd of
// identical queries costs one categorization.
//
// The cache is generic over the value type so it can be tested — and bounded
// — without depending on the category package: the caller supplies each
// value's approximate byte size at insertion.
//
// Invalidation is by key construction, not by explicit purge: workload-stats
// snapshots carry a generation counter, the generation is part of the key,
// and entries from superseded generations simply age out of the LRU.
//
// Superseded entries are not dead weight, though: DoStale lets a miss consult
// the newest entry sharing the caller's base key (everything but the
// generation) and hand it to the compute, which may repair it into the new
// generation's value far cheaper than a cold build (DESIGN.md §13). Staleness
// is resolved under the same singleflight as the compute itself.
package treecache

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
)

// Config bounds a Cache. A zero bound disables that dimension; both zero
// means the cache holds nothing (New returns a cache that always misses and
// never stores — callers gate on Enabled).
type Config struct {
	// MaxEntries bounds the number of cached values.
	MaxEntries int
	// MaxBytes bounds the sum of the callers' reported value sizes.
	MaxBytes int64
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits counts lookups answered from a stored value.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that started a computation.
	Misses uint64 `json:"misses"`
	// Shared counts lookups that joined another caller's in-flight
	// computation instead of starting their own.
	Shared uint64 `json:"shared"`
	// Evictions counts values dropped to respect the bounds.
	Evictions uint64 `json:"evictions"`
	// Stale counts computations that were offered a superseded-generation
	// value for their base key (a DoStale miss with repair material).
	Stale uint64 `json:"stale"`
	// Repaired counts computes that reported deriving their value from the
	// offered stale one instead of building cold.
	Repaired uint64 `json:"repaired"`
	// Panics counts computes that panicked. The panic is demoted to a
	// *resilience.PanicError delivered to every waiter; nothing is cached
	// and the process survives.
	Panics uint64 `json:"panics"`
	// Entries and Bytes describe current occupancy.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Cache is a bounded LRU with singleflight computation. Safe for concurrent
// use. The zero value is not usable; call New.
type Cache[V any] struct {
	mu  sync.Mutex
	cfg Config // immutable after New
	//lint:guardedby mu
	ll *list.List // front = most recently used
	//lint:guardedby mu
	table map[string]*list.Element
	//lint:guardedby mu
	byBase map[string]*list.Element // newest entry per base key (DoStale)
	//lint:guardedby mu
	inflight map[string]*call[V]
	//lint:guardedby mu
	bytes int64
	//lint:guardedby mu
	stats Stats
}

type entry[V any] struct {
	key  string
	base string // generation-free prefix of key; "" when untracked
	val  V
	size int64
}

// call is one in-flight computation. refs counts the waiters (including the
// initiator); when every waiter abandons (request contexts canceled), the
// compute context is canceled so a cooperative computation can stop early.
type call[V any] struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int
	val    V
	size   int64
	err    error
}

// New builds a cache with the given bounds.
func New[V any](cfg Config) *Cache[V] {
	return &Cache[V]{
		cfg:      cfg,
		ll:       list.New(),
		table:    make(map[string]*list.Element),
		byBase:   make(map[string]*list.Element),
		inflight: make(map[string]*call[V]),
	}
}

// Bounds returns the configured limits.
func (c *Cache[V]) Bounds() Config { return c.cfg }

// Enabled reports whether the configuration admits any entry at all.
func (c *Cache[V]) Enabled() bool {
	return c != nil && (c.cfg.MaxEntries > 0 || c.cfg.MaxBytes > 0)
}

// Get returns the cached value for key, refreshing its recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.table[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Do returns the value for key, computing it at most once across concurrent
// callers. compute receives a context that is detached from any single
// request but canceled once every caller waiting on this key has gone away;
// compute returns the value and its approximate size in bytes. A negative
// size delivers the value to every waiter WITHOUT storing it — for values
// that must not be memoized, like a degraded tree built under an exhausted
// deadline budget. hit reports whether the value came from the cache (false
// for both the computing caller and the waiters that joined it). Errors are
// returned to every waiting caller and never cached. A panicking compute is
// recovered at this boundary: every waiter receives a *resilience.PanicError
// (the entry is not poisoned, the process survives). If ctx is canceled
// while waiting, Do returns ctx's error.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func(context.Context) (V, int64, error)) (val V, hit bool, err error) {
	return c.do(ctx, key, "", func(cctx context.Context, _ V, _ bool) (V, int64, bool, error) {
		v, size, err := compute(cctx)
		return v, size, false, err
	})
}

// DoStale is Do for generation-stamped keys: key is the full lookup key
// (including the stats generation), base is the generation-free prefix shared
// by every generation of the same logical entry. On a miss, the newest stored
// value under base — necessarily a superseded generation, or the full key
// would have hit — is handed to compute as repair material (haveStale reports
// whether one existed; its recency is not refreshed). compute additionally
// returns repaired, true when the value was derived from the stale one rather
// than built cold — counted separately so operators can see repair working.
// All other semantics (singleflight, negative-size no-store, panic
// containment, cancellation) match Do.
func (c *Cache[V]) DoStale(ctx context.Context, key, base string, compute func(cctx context.Context, stale V, haveStale bool) (V, int64, bool, error)) (val V, hit bool, err error) {
	return c.do(ctx, key, base, compute)
}

func (c *Cache[V]) do(ctx context.Context, key, base string, compute func(context.Context, V, bool) (V, int64, bool, error)) (val V, hit bool, err error) {
	var stale V
	haveStale := false
	c.mu.Lock()
	if el, ok := c.table[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*entry[V]).val
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		cl.refs++
		c.stats.Shared++
		c.mu.Unlock()
		return c.wait(ctx, cl)
	}
	if base != "" {
		if el, ok := c.byBase[base]; ok && el.Value.(*entry[V]).key != key {
			stale = el.Value.(*entry[V]).val
			haveStale = true
			c.stats.Stale++
		}
	}
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	cl := &call[V]{done: make(chan struct{}), cancel: cancel, refs: 1}
	c.inflight[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	go func() {
		v, size, repaired, err := c.protectStale(cctx, stale, haveStale, compute)
		c.mu.Lock()
		cl.val, cl.size, cl.err = v, size, err
		delete(c.inflight, key)
		if err == nil {
			if repaired {
				c.stats.Repaired++
			}
			if size >= 0 {
				c.insertLocked(key, base, v, size)
			}
		}
		c.mu.Unlock()
		cancel()
		close(cl.done)
	}()
	return c.wait(ctx, cl)
}

// protectStale runs compute behind the singleflight resilience.Protect
// boundary: a panic anywhere below (the categorizer, a repair, an injected
// fault) becomes an error delivered to all waiters instead of tearing down
// the process.
func (c *Cache[V]) protectStale(cctx context.Context, stale V, haveStale bool, compute func(context.Context, V, bool) (V, int64, bool, error)) (V, int64, bool, error) {
	type sized struct {
		val      V
		size     int64
		repaired bool
	}
	out, err := resilience.Protect(
		func(*resilience.PanicError) {
			c.mu.Lock()
			c.stats.Panics++
			c.mu.Unlock()
		},
		func() (sized, error) {
			if err := faultinject.Inject(cctx, faultinject.SiteCacheCompute); err != nil {
				return sized{}, err
			}
			v, size, repaired, err := compute(cctx, stale, haveStale)
			return sized{v, size, repaired}, err
		},
	)
	return out.val, out.size, out.repaired, err
}

// wait blocks until the call completes or ctx is canceled. Abandoning the
// last reference cancels the computation's context.
func (c *Cache[V]) wait(ctx context.Context, cl *call[V]) (V, bool, error) {
	select {
	case <-cl.done:
		return cl.val, false, cl.err
	case <-ctx.Done():
		c.mu.Lock()
		cl.refs--
		if cl.refs <= 0 {
			cl.cancel()
		}
		c.mu.Unlock()
		var zero V
		return zero, false, ctx.Err()
	}
}

// insertLocked stores the value and evicts from the cold end until the
// bounds hold again. The newest entry survives even when it alone exceeds
// MaxBytes: evicting what was just computed would thrash. A disabled cache
// (both bounds zero) stores nothing.
func (c *Cache[V]) insertLocked(key, base string, val V, size int64) {
	if c.cfg.MaxEntries <= 0 && c.cfg.MaxBytes <= 0 {
		return
	}
	if el, ok := c.table[key]; ok { // raced insert of the same key
		c.bytes += size - el.Value.(*entry[V]).size
		el.Value.(*entry[V]).val = val
		el.Value.(*entry[V]).size = size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry[V]{key: key, base: base, val: val, size: size})
		c.table[key] = el
		if base != "" {
			c.byBase[base] = el // newest generation wins the base slot
		}
		c.bytes += size
	}
	for c.ll.Len() > 1 &&
		((c.cfg.MaxEntries > 0 && c.ll.Len() > c.cfg.MaxEntries) ||
			(c.cfg.MaxBytes > 0 && c.bytes > c.cfg.MaxBytes)) {
		c.evictLocked()
	}
}

func (c *Cache[V]) evictLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.table, e.key)
	if e.base != "" && c.byBase[e.base] == el {
		delete(c.byBase, e.base)
	}
	c.bytes -= e.size
	c.stats.Evictions++
}

// Stats returns a snapshot of the counters and occupancy.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	return s
}

// Flush drops every stored value (in-flight computations are unaffected and
// will store their results when they finish).
func (c *Cache[V]) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.table)
	clear(c.byBase)
	c.bytes = 0
}
