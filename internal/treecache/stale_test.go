package treecache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// fill stores val under (key, base) through the public API.
func fill(t *testing.T, c *Cache[string], key, base, val string) {
	t.Helper()
	got, _, err := c.DoStale(context.Background(), key, base,
		func(context.Context, string, bool) (string, int64, bool, error) {
			return val, 1, false, nil
		})
	if err != nil || got != val {
		t.Fatalf("fill %q: got %q err %v", key, got, err)
	}
}

func TestDoStaleOffersSupersededGeneration(t *testing.T) {
	c := New[string](Config{MaxEntries: 8})
	fill(t, c, "q|gen1", "q", "tree-g1")

	var sawStale string
	var had bool
	got, hit, err := c.DoStale(context.Background(), "q|gen2", "q",
		func(_ context.Context, stale string, haveStale bool) (string, int64, bool, error) {
			sawStale, had = stale, haveStale
			return "tree-g2", 1, true, nil
		})
	if err != nil || hit || got != "tree-g2" {
		t.Fatalf("DoStale = (%q, %v, %v)", got, hit, err)
	}
	if !had || sawStale != "tree-g1" {
		t.Fatalf("compute offered (%q, %v), want superseded tree-g1", sawStale, had)
	}
	s := c.Stats()
	if s.Stale != 1 || s.Repaired != 1 {
		t.Fatalf("stats stale=%d repaired=%d, want 1/1", s.Stale, s.Repaired)
	}

	// Newest generation wins the base slot: a gen3 miss repairs from gen2.
	_, _, err = c.DoStale(context.Background(), "q|gen3", "q",
		func(_ context.Context, stale string, haveStale bool) (string, int64, bool, error) {
			if !haveStale || stale != "tree-g2" {
				t.Errorf("gen3 offered (%q, %v), want tree-g2", stale, haveStale)
			}
			return "tree-g3", 1, true, nil
		})
	if err != nil {
		t.Fatal(err)
	}

	// A repeat of the full key is a plain hit: no compute, no stale counter.
	got, hit, err = c.DoStale(context.Background(), "q|gen3", "q",
		func(context.Context, string, bool) (string, int64, bool, error) {
			t.Error("hit ran compute")
			return "", 0, false, nil
		})
	if err != nil || !hit || got != "tree-g3" {
		t.Fatalf("hit = (%q, %v, %v)", got, hit, err)
	}
	if s := c.Stats(); s.Stale != 2 {
		t.Fatalf("stale count = %d after hit, want 2", s.Stale)
	}
}

func TestDoStaleColdMissHasNoMaterial(t *testing.T) {
	c := New[string](Config{MaxEntries: 8})
	_, _, err := c.DoStale(context.Background(), "q|gen1", "q",
		func(_ context.Context, stale string, haveStale bool) (string, int64, bool, error) {
			if haveStale || stale != "" {
				t.Errorf("cold miss offered (%q, %v)", stale, haveStale)
			}
			return "tree", 1, false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Stale != 0 || s.Repaired != 0 {
		t.Fatalf("stats stale=%d repaired=%d, want 0/0", s.Stale, s.Repaired)
	}
	// Different base keys never cross-pollinate.
	_, _, err = c.DoStale(context.Background(), "other|gen1", "other",
		func(_ context.Context, _ string, haveStale bool) (string, int64, bool, error) {
			if haveStale {
				t.Error("foreign base offered as stale material")
			}
			return "tree2", 1, false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoStaleSingleflight(t *testing.T) {
	c := New[string](Config{MaxEntries: 8})
	fill(t, c, "q|gen1", "q", "tree-g1")

	const waiters = 16
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := c.DoStale(context.Background(), "q|gen2", "q",
				func(_ context.Context, stale string, haveStale bool) (string, int64, bool, error) {
					computes.Add(1)
					<-gate
					if !haveStale || stale != "tree-g1" {
						return "", 0, false, fmt.Errorf("bad stale offer (%q, %v)", stale, haveStale)
					}
					return "tree-g2", 1, true, nil
				})
			if err != nil || got != "tree-g2" {
				t.Errorf("waiter: (%q, %v)", got, err)
			}
		}()
	}
	// Let the goroutines pile up on the inflight call, then release.
	for c.Stats().Shared < waiters-1 {
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes for one stale-repair miss, want 1 (singleflight)", n)
	}
	s := c.Stats()
	if s.Stale != 1 || s.Repaired != 1 || s.Shared != waiters-1 {
		t.Fatalf("stats = %+v, want stale=1 repaired=1 shared=%d", s, waiters-1)
	}
}

func TestDoStaleEvictionDropsBaseSlot(t *testing.T) {
	c := New[string](Config{MaxEntries: 1})
	fill(t, c, "a|gen1", "a", "tree-a")
	fill(t, c, "b|gen1", "b", "tree-b") // evicts a|gen1
	_, _, err := c.DoStale(context.Background(), "a|gen2", "a",
		func(_ context.Context, _ string, haveStale bool) (string, int64, bool, error) {
			if haveStale {
				t.Error("evicted entry offered as stale material")
			}
			return "tree-a2", 1, false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoStaleNegativeSizeNotStored(t *testing.T) {
	c := New[string](Config{MaxEntries: 8})
	fill(t, c, "q|gen1", "q", "tree-g1")
	got, _, err := c.DoStale(context.Background(), "q|gen2", "q",
		func(context.Context, string, bool) (string, int64, bool, error) {
			return "degraded", -1, false, nil
		})
	if err != nil || got != "degraded" {
		t.Fatalf("DoStale = (%q, %v)", got, err)
	}
	if _, ok := c.Get("q|gen2"); ok {
		t.Fatal("negative-size value was stored")
	}
	// The base slot still points at gen1 — the next miss can repair from it.
	_, _, err = c.DoStale(context.Background(), "q|gen3", "q",
		func(_ context.Context, stale string, haveStale bool) (string, int64, bool, error) {
			if !haveStale || stale != "tree-g1" {
				t.Errorf("offered (%q, %v), want tree-g1", stale, haveStale)
			}
			return "tree-g3", 1, true, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushClearsBaseSlots(t *testing.T) {
	c := New[string](Config{MaxEntries: 8})
	fill(t, c, "q|gen1", "q", "tree-g1")
	c.Flush()
	_, _, err := c.DoStale(context.Background(), "q|gen2", "q",
		func(_ context.Context, _ string, haveStale bool) (string, int64, bool, error) {
			if haveStale {
				t.Error("flushed entry offered as stale material")
			}
			return "tree-g2", 1, false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
