package treecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
)

func bg() context.Context { return context.Background() }

func TestHitMissAndLRUOrder(t *testing.T) {
	c := New[int](Config{MaxEntries: 3})
	get := func(key string, want int) {
		t.Helper()
		v, _, err := c.Do(bg(), key, func(context.Context) (int, int64, error) { return want, 8, nil })
		if err != nil || v != want {
			t.Fatalf("Do(%s) = %d, %v", key, v, err)
		}
	}
	get("a", 1)
	get("b", 2)
	get("c", 3)
	if _, ok := c.Get("a"); !ok { // refresh a: now order (hot→cold) a, c, b
		t.Fatal("a should be cached")
	}
	get("d", 4) // evicts b, the least-recently-used
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should survive", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestByteBound(t *testing.T) {
	c := New[string](Config{MaxBytes: 100})
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Do(bg(), key, func(context.Context) (string, int64, error) { return key, 40, nil })
	}
	s := c.Stats()
	if s.Bytes > 100 {
		t.Fatalf("bytes %d over bound", s.Bytes)
	}
	if s.Entries != 2 || s.Evictions != 3 {
		t.Fatalf("stats = %+v", s)
	}
	// One oversized value still caches (evicting everything colder).
	c.Do(bg(), "big", func(context.Context) (string, int64, error) { return "big", 1000, nil })
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversized entry should be kept")
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("oversized insert should evict the rest: %+v", s)
	}
}

// TestSingleflight: N concurrent misses on one key run compute once.
func TestSingleflight(t *testing.T) {
	c := New[int](Config{MaxEntries: 16})
	var computes atomic.Int32
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(bg(), "k", func(context.Context) (int, int64, error) {
				computes.Add(1)
				<-release
				return 42, 8, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Wait until every goroutine has either started the compute or joined it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.Stats()
		if s.Misses+s.Shared >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never queued: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times; want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Shared != n-1 {
		t.Fatalf("stats = %+v; want 1 miss, %d shared", s, n-1)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, _, err := c.Do(bg(), "k", func(context.Context) (int, int64, error) {
			calls++
			return 0, 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 3 {
		t.Fatalf("failed computes must not be cached; ran %d times", calls)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestWaiterCancellation: a waiter whose context dies returns promptly; the
// computation finishes for the remaining waiter and is cached.
func TestWaiterCancellation(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(bg(), "k", func(context.Context) (int, int64, error) {
		close(started)
		<-release
		return 7, 8, nil
	})
	<-started
	ctx, cancel := context.WithCancel(bg())
	cancel()
	if _, _, err := c.Do(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v", err)
	}
	close(release)
	v, hit, err := c.Do(bg(), "k", nil) // nil compute is safe: value is cached or inflight
	if err != nil || v != 7 {
		t.Fatalf("Do after release = %d, %v, %v", v, hit, err)
	}
}

// TestAbandonedComputeCanceled: when every caller goes away, the compute
// context is canceled so cooperative computations can stop burning CPU.
func TestAbandonedComputeCanceled(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	ctx, cancel := context.WithCancel(bg())
	computeCanceled := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(ctx, "k", func(cctx context.Context) (int, int64, error) {
			cancel() // the only caller abandons mid-compute
			select {
			case <-cctx.Done():
				close(computeCanceled)
				return 0, 0, cctx.Err()
			case <-time.After(5 * time.Second):
				return 0, 0, nil
			}
		})
	}()
	select {
	case <-computeCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context never canceled after the last caller left")
	}
	<-done
}

func TestDisabledCacheStoresNothing(t *testing.T) {
	c := New[int](Config{})
	if c.Enabled() {
		t.Fatal("zero config should be disabled")
	}
	c.Do(bg(), "k", func(context.Context) (int, int64, error) { return 1, 8, nil })
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

func TestFlush(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	c.Do(bg(), "k", func(context.Context) (int, int64, error) { return 1, 8, nil })
	c.Flush()
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("after flush: %+v", s)
	}
}

// TestConcurrentMixed hammers the cache from many goroutines with a small
// key space to exercise hit/miss/join/evict interleavings under -race.
func TestConcurrentMixed(t *testing.T) {
	c := New[int](Config{MaxEntries: 8, MaxBytes: 1 << 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12)
				want := (g + i) % 12
				v, _, err := c.Do(bg(), key, func(context.Context) (int, int64, error) {
					return want, 64, nil
				})
				if err != nil || v != want {
					t.Errorf("Do(%s) = %d, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries > 8 || s.Bytes > 1<<16 {
		t.Fatalf("bounds violated: %+v", s)
	}
}

// TestErrorReachesEveryWaiter: N concurrent callers join one failing
// compute; every one of them gets the error, nothing is cached, and a later
// call recomputes.
func TestErrorReachesEveryWaiter(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	boom := errors.New("boom")
	release := make(chan struct{})
	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(bg(), "k", func(context.Context) (int, int64, error) {
				<-release
				return 0, 0, boom
			})
		}(i)
	}
	waitJoined(t, c, n)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d: err = %v, want boom", i, err)
		}
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("failed compute cached an entry: %+v", s)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed compute left a value behind")
	}
}

// TestPanicReachesEveryWaiter: a panicking compute is recovered at the
// singleflight boundary; every concurrent waiter receives a
// *resilience.PanicError, the cache is not poisoned, the Panics counter
// moves, and the key is computable again afterwards.
func TestPanicReachesEveryWaiter(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	release := make(chan struct{})
	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(bg(), "k", func(context.Context) (int, int64, error) {
				<-release
				panic("kaboom")
			})
		}(i)
	}
	waitJoined(t, c, n)
	close(release)
	wg.Wait()
	for i, err := range errs {
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("waiter %d: err = %v (%T), want *resilience.PanicError", i, err, err)
		}
		if pe.Value != "kaboom" {
			t.Fatalf("waiter %d: panic value = %v", i, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("waiter %d: panic error lost the stack", i)
		}
	}
	s := c.Stats()
	if s.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", s.Panics)
	}
	if s.Entries != 0 {
		t.Fatalf("panicking compute cached an entry: %+v", s)
	}
	// The key is not poisoned: the next Do computes normally.
	v, _, err := c.Do(bg(), "k", func(context.Context) (int, int64, error) { return 9, 8, nil })
	if err != nil || v != 9 {
		t.Fatalf("Do after panic = %d, %v", v, err)
	}
}

// TestNegativeSizeDeliversWithoutStoring: the no-store sentinel (size < 0)
// hands the value to every waiter but leaves the cache empty — the serving
// path uses it so a degraded tree is never memoized as full-fidelity.
func TestNegativeSizeDeliversWithoutStoring(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	release := make(chan struct{})
	const n = 4
	vals := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(bg(), "k", func(context.Context) (int, int64, error) {
				<-release
				return 5, -1, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			vals[i] = v
		}(i)
	}
	waitJoined(t, c, n)
	close(release)
	wg.Wait()
	for i, v := range vals {
		if v != 5 {
			t.Fatalf("waiter %d got %d, want 5", i, v)
		}
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("no-store value was cached")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("no-store compute changed occupancy: %+v", s)
	}
	// A later compute with a real size does store.
	c.Do(bg(), "k", func(context.Context) (int, int64, error) { return 6, 8, nil })
	if v, ok := c.Get("k"); !ok || v != 6 {
		t.Fatalf("storeable recompute: got %d, %v", v, ok)
	}
}

// waitJoined blocks until n callers have either started or joined the
// in-flight compute for the test's key.
func waitJoined(t *testing.T, c *Cache[int], n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.Stats()
		if s.Misses+s.Shared >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("callers never joined: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}
