package treecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func bg() context.Context { return context.Background() }

func TestHitMissAndLRUOrder(t *testing.T) {
	c := New[int](Config{MaxEntries: 3})
	get := func(key string, want int) {
		t.Helper()
		v, _, err := c.Do(bg(), key, func(context.Context) (int, int64, error) { return want, 8, nil })
		if err != nil || v != want {
			t.Fatalf("Do(%s) = %d, %v", key, v, err)
		}
	}
	get("a", 1)
	get("b", 2)
	get("c", 3)
	if _, ok := c.Get("a"); !ok { // refresh a: now order (hot→cold) a, c, b
		t.Fatal("a should be cached")
	}
	get("d", 4) // evicts b, the least-recently-used
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should survive", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestByteBound(t *testing.T) {
	c := New[string](Config{MaxBytes: 100})
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Do(bg(), key, func(context.Context) (string, int64, error) { return key, 40, nil })
	}
	s := c.Stats()
	if s.Bytes > 100 {
		t.Fatalf("bytes %d over bound", s.Bytes)
	}
	if s.Entries != 2 || s.Evictions != 3 {
		t.Fatalf("stats = %+v", s)
	}
	// One oversized value still caches (evicting everything colder).
	c.Do(bg(), "big", func(context.Context) (string, int64, error) { return "big", 1000, nil })
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversized entry should be kept")
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("oversized insert should evict the rest: %+v", s)
	}
}

// TestSingleflight: N concurrent misses on one key run compute once.
func TestSingleflight(t *testing.T) {
	c := New[int](Config{MaxEntries: 16})
	var computes atomic.Int32
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(bg(), "k", func(context.Context) (int, int64, error) {
				computes.Add(1)
				<-release
				return 42, 8, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Wait until every goroutine has either started the compute or joined it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.Stats()
		if s.Misses+s.Shared >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never queued: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times; want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Shared != n-1 {
		t.Fatalf("stats = %+v; want 1 miss, %d shared", s, n-1)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, _, err := c.Do(bg(), "k", func(context.Context) (int, int64, error) {
			calls++
			return 0, 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 3 {
		t.Fatalf("failed computes must not be cached; ran %d times", calls)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestWaiterCancellation: a waiter whose context dies returns promptly; the
// computation finishes for the remaining waiter and is cached.
func TestWaiterCancellation(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(bg(), "k", func(context.Context) (int, int64, error) {
		close(started)
		<-release
		return 7, 8, nil
	})
	<-started
	ctx, cancel := context.WithCancel(bg())
	cancel()
	if _, _, err := c.Do(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v", err)
	}
	close(release)
	v, hit, err := c.Do(bg(), "k", nil) // nil compute is safe: value is cached or inflight
	if err != nil || v != 7 {
		t.Fatalf("Do after release = %d, %v, %v", v, hit, err)
	}
}

// TestAbandonedComputeCanceled: when every caller goes away, the compute
// context is canceled so cooperative computations can stop burning CPU.
func TestAbandonedComputeCanceled(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	ctx, cancel := context.WithCancel(bg())
	computeCanceled := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(ctx, "k", func(cctx context.Context) (int, int64, error) {
			cancel() // the only caller abandons mid-compute
			select {
			case <-cctx.Done():
				close(computeCanceled)
				return 0, 0, cctx.Err()
			case <-time.After(5 * time.Second):
				return 0, 0, nil
			}
		})
	}()
	select {
	case <-computeCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context never canceled after the last caller left")
	}
	<-done
}

func TestDisabledCacheStoresNothing(t *testing.T) {
	c := New[int](Config{})
	if c.Enabled() {
		t.Fatal("zero config should be disabled")
	}
	c.Do(bg(), "k", func(context.Context) (int, int64, error) { return 1, 8, nil })
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

func TestFlush(t *testing.T) {
	c := New[int](Config{MaxEntries: 4})
	c.Do(bg(), "k", func(context.Context) (int, int64, error) { return 1, 8, nil })
	c.Flush()
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("after flush: %+v", s)
	}
}

// TestConcurrentMixed hammers the cache from many goroutines with a small
// key space to exercise hit/miss/join/evict interleavings under -race.
func TestConcurrentMixed(t *testing.T) {
	c := New[int](Config{MaxEntries: 8, MaxBytes: 1 << 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12)
				want := (g + i) % 12
				v, _, err := c.Do(bg(), key, func(context.Context) (int, int64, error) {
					return want, 64, nil
				})
				if err != nil || v != want {
					t.Errorf("Do(%s) = %d, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries > 8 || s.Bytes > 1<<16 {
		t.Fatalf("bounds violated: %+v", s)
	}
}
