// Package explore simulates users navigating category trees, implementing
// the measurement side of the paper's evaluation (§6): given a user's true
// information need (a query) it replays the exploration models of §3.2 over
// a tree and counts the items — category labels and data tuples — the user
// examines, for both the ALL scenario (find every relevant tuple) and the
// ONE scenario (stop at the first).
//
// Two user kinds are supported. A deterministic Intent reproduces the
// synthetic explorations of §6.2: the user drills into exactly the
// categories overlapping her query. A noisy Intent adds the behavioural
// imperfection of real subjects (§6.3): occasionally exploring an
// uninteresting category or overlooking an interesting one.
package explore

import (
	"math"
	"math/rand"

	"repro/internal/category"
	"repro/internal/sqlparse"
)

// Intent is a simulated user's information need plus behavioural noise.
type Intent struct {
	// Query is the user's true interest: the categories she drills into are
	// those whose labels overlap its selection conditions, and the tuples
	// she considers relevant are those satisfying it.
	Query *sqlparse.Query
	// Rng drives behavioural noise; nil means fully deterministic.
	Rng *rand.Rand
	// ExploreNoise is the probability of exploring a category whose label
	// does not overlap the interest (curiosity / misreading).
	ExploreNoise float64
	// IgnoreNoise is the probability of ignoring a category whose label does
	// overlap the interest (fatigue / overlooking).
	IgnoreNoise float64
	// ShowCatNoise is the probability of flipping the SHOWTUPLES/SHOWCAT
	// choice.
	ShowCatNoise float64
	// ScanFatigue models attention decay while scanning long tuple lists:
	// during a SHOWTUPLES pass over n tuples, each relevant tuple is
	// recognized with probability max(0.05, 1 − ScanFatigue·n/1000). Real
	// study subjects overlooked relevant items in long flat lists — the
	// mechanism behind the paper's Figure 10, where poor categorizations
	// yield fewer relevant finds despite more items examined. Zero (or a nil
	// Rng) disables fatigue.
	ScanFatigue float64
}

// recognitionProb returns the per-relevant-tuple recognition probability for
// a SHOWTUPLES scan over n tuples.
func (in *Intent) recognitionProb(n int) float64 {
	if in.Rng == nil || in.ScanFatigue == 0 {
		return 1
	}
	p := 1 - in.ScanFatigue*float64(n)/1000
	if p < 0.05 {
		p = 0.05
	}
	return p
}

// recognizes draws whether one relevant tuple is spotted during a scan of n
// tuples.
func (in *Intent) recognizes(n int) bool {
	p := in.recognitionProb(n)
	if p >= 1 {
		return true
	}
	return in.Rng.Float64() < p
}

// interestedIn reports whether the user, upon examining the label, decides
// to explore the category (§4.2's presumption plus noise): true when her
// query's condition on the label's attribute overlaps the label, or when she
// has no condition on that attribute at all.
func (in *Intent) interestedIn(l category.Label) bool {
	base := in.overlaps(l)
	if in.Rng == nil {
		return base
	}
	if base {
		if in.IgnoreNoise > 0 && in.Rng.Float64() < in.IgnoreNoise {
			return false
		}
		return true
	}
	if in.ExploreNoise > 0 && in.Rng.Float64() < in.ExploreNoise {
		return true
	}
	return false
}

func (in *Intent) overlaps(l category.Label) bool {
	if l.Kind == category.LabelAll {
		return true
	}
	c := in.Query.Cond(l.Attr)
	if c == nil {
		return true // no condition: interested in all values of the attribute
	}
	switch l.Kind {
	case category.LabelValue:
		if c.IsRange {
			return true // type mismatch cannot arise from one schema; be permissive
		}
		for _, v := range c.Values {
			if v == l.Value {
				return true
			}
		}
		return false
	case category.LabelValueSet:
		if c.IsRange {
			return true
		}
		for _, v := range c.Values {
			for _, lv := range l.Values {
				if v == lv {
					return true
				}
			}
		}
		return false
	case category.LabelRange:
		if !c.IsRange {
			return true
		}
		hi := l.Hi
		if l.HiInc {
			hi = math.Nextafter(hi, math.Inf(1))
		}
		return c.OverlapsInterval(l.Lo, hi)
	default:
		return true
	}
}

// wantsShowCat reports whether the user chooses SHOWCAT at a non-leaf node
// whose children are categorized by subAttr: per §4.2 she does iff she is
// interested in only a few values of subAttr, i.e. her query carries a
// selection condition on it.
func (in *Intent) wantsShowCat(subAttr string) bool {
	base := in.Query.Cond(subAttr) != nil
	if in.Rng != nil && in.ShowCatNoise > 0 && in.Rng.Float64() < in.ShowCatNoise {
		return !base
	}
	return base
}

// Outcome reports what one simulated exploration examined and found.
type Outcome struct {
	// LabelsExamined counts category labels read.
	LabelsExamined int
	// TuplesExamined counts data tuples read.
	TuplesExamined int
	// RelevantFound counts examined tuples satisfying the intent.
	RelevantFound int
	// RelevantTotal counts tuples in the whole result set satisfying the
	// intent.
	RelevantTotal int
	// Found reports, for the ONE scenario, whether a relevant tuple was
	// reached.
	Found bool
	// CategoriesExplored counts the categories drilled into (root excluded).
	CategoriesExplored int
}

// Cost returns the information-overload cost of the exploration: tuples plus
// K-weighted labels (the paper's item count, with labels costing K relative
// to tuples).
func (o Outcome) Cost(k float64) float64 {
	return float64(o.TuplesExamined) + k*float64(o.LabelsExamined)
}

// NormalizedCost is Figure 11's metric: items examined per relevant tuple
// found. It returns +Inf when nothing relevant was found.
func (o Outcome) NormalizedCost(k float64) float64 {
	if o.RelevantFound == 0 {
		return math.Inf(1)
	}
	return o.Cost(k) / float64(o.RelevantFound)
}

// Explorer replays exploration models over trees.
type Explorer struct {
	// K is the label-examination cost used by Outcome.Cost callers; it does
	// not affect which items get examined.
	K float64
}

// All simulates the ALL-scenario exploration (Figure 2): the user explores
// until she has seen every relevant tuple reachable through categories she
// considers interesting.
func (e *Explorer) All(tree *category.Tree, in *Intent) Outcome {
	out := Outcome{RelevantTotal: e.relevantTotal(tree, in)}
	e.exploreAll(tree, tree.Root, in, &out)
	return out
}

func (e *Explorer) exploreAll(tree *category.Tree, n *category.Node, in *Intent, out *Outcome) {
	if n.IsLeaf() || !in.wantsShowCat(n.SubAttr) {
		// SHOWTUPLES: examine every tuple in tset(C). With fatigue, a
		// relevant tuple in a long list may be overlooked.
		out.TuplesExamined += n.Size()
		pred := in.Query.Predicate()
		for _, i := range n.Tset {
			if pred.Matches(tree.R.Schema(), tree.R.Row(i)) && in.recognizes(n.Size()) {
				out.RelevantFound++
			}
		}
		return
	}
	// SHOWCAT: examine every child label, explore the interesting ones.
	out.LabelsExamined += len(n.Children)
	for _, c := range n.Children {
		if in.interestedIn(c.Label) {
			out.CategoriesExplored++
			e.exploreAll(tree, c, in, out)
		}
	}
}

// One simulates the ONE-scenario exploration (Figure 3): the user stops at
// the first relevant tuple. Unlike the analytical model — which assumes an
// explored category always yields a relevant tuple — the simulation lets the
// user resume scanning sibling labels when a drill-down comes up empty,
// which is how the treeview study subjects behaved.
func (e *Explorer) One(tree *category.Tree, in *Intent) Outcome {
	out := Outcome{RelevantTotal: e.relevantTotal(tree, in)}
	e.exploreOne(tree, tree.Root, in, &out)
	return out
}

func (e *Explorer) exploreOne(tree *category.Tree, n *category.Node, in *Intent, out *Outcome) {
	if n.IsLeaf() || !in.wantsShowCat(n.SubAttr) {
		// SHOWTUPLES: scan from the beginning until the first recognized
		// relevant tuple.
		pred := in.Query.Predicate()
		for _, i := range n.Tset {
			out.TuplesExamined++
			if pred.Matches(tree.R.Schema(), tree.R.Row(i)) && in.recognizes(n.Size()) {
				out.RelevantFound++
				out.Found = true
				return
			}
		}
		return
	}
	for _, c := range n.Children {
		out.LabelsExamined++
		if in.interestedIn(c.Label) {
			out.CategoriesExplored++
			e.exploreOne(tree, c, in, out)
			if out.Found {
				return // found the one tuple; stop reading labels
			}
		}
	}
}

// Few simulates the intermediate scenario the paper names but does not
// model (§3.2: "other scenarios (e.g., user interested in two/few tuples)
// fall in between these two ends"): the user explores until she has found k
// relevant tuples, then stops. Few(tree, in, 1) behaves like One; a k no
// smaller than the relevant count behaves like All.
func (e *Explorer) Few(tree *category.Tree, in *Intent, k int) Outcome {
	if k < 1 {
		k = 1
	}
	out := Outcome{RelevantTotal: e.relevantTotal(tree, in)}
	e.exploreFew(tree, tree.Root, in, k, &out)
	out.Found = out.RelevantFound > 0
	return out
}

func (e *Explorer) exploreFew(tree *category.Tree, n *category.Node, in *Intent, k int, out *Outcome) {
	if n.IsLeaf() || !in.wantsShowCat(n.SubAttr) {
		// SHOWTUPLES: scan until the k-th relevant tuple overall.
		pred := in.Query.Predicate()
		for _, i := range n.Tset {
			out.TuplesExamined++
			if pred.Matches(tree.R.Schema(), tree.R.Row(i)) && in.recognizes(n.Size()) {
				out.RelevantFound++
				if out.RelevantFound >= k {
					return
				}
			}
		}
		return
	}
	for _, c := range n.Children {
		out.LabelsExamined++
		if in.interestedIn(c.Label) {
			out.CategoriesExplored++
			e.exploreFew(tree, c, in, k, out)
			if out.RelevantFound >= k {
				return
			}
		}
	}
}

// countRelevant counts tuples in tset(n) satisfying the intent.
func (e *Explorer) countRelevant(tree *category.Tree, n *category.Node, in *Intent) int {
	pred := in.Query.Predicate()
	count := 0
	for _, i := range n.Tset {
		if pred.Matches(tree.R.Schema(), tree.R.Row(i)) {
			count++
		}
	}
	return count
}

func (e *Explorer) relevantTotal(tree *category.Tree, in *Intent) int {
	return e.countRelevant(tree, tree.Root, in)
}

// FlatAll is the "No categorization" baseline for the ALL scenario: the user
// scans the entire result set.
func FlatAll(tree *category.Tree, in *Intent) Outcome {
	e := &Explorer{}
	total := e.relevantTotal(tree, in)
	return Outcome{
		TuplesExamined: tree.Root.Size(),
		RelevantFound:  total,
		RelevantTotal:  total,
	}
}

// FlatOne is the "No categorization" baseline for the ONE scenario: the user
// scans the result set from the top until the first relevant tuple.
func FlatOne(tree *category.Tree, in *Intent) Outcome {
	e := &Explorer{}
	out := Outcome{RelevantTotal: e.relevantTotal(tree, in)}
	pred := in.Query.Predicate()
	for _, i := range tree.Root.Tset {
		out.TuplesExamined++
		if pred.Matches(tree.R.Schema(), tree.R.Row(i)) {
			out.RelevantFound++
			out.Found = true
			break
		}
	}
	return out
}
