package explore

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/category"
	"repro/internal/relation"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// fixtureTree hand-builds the Figure 1 style tree over a tiny relation:
// level 1 neighborhoods, level 2 price buckets under the first hood.
//
//	root ── Bellevue ── price [200k,250k)   (2 tuples, 1 relevant)
//	│                └─ price [250k,300k]   (2 tuples)
//	├─ Redmond  (3 tuples)
//	└─ Seattle  (2 tuples)
func fixtureTree(t *testing.T) *category.Tree {
	t.Helper()
	schema := relation.MustSchema(
		relation.Attribute{Name: "neighborhood", Type: relation.Categorical},
		relation.Attribute{Name: "price", Type: relation.Numeric},
	)
	r := relation.New("ListProperty", schema)
	rows := []struct {
		n string
		p float64
	}{
		{"Bellevue, WA", 210000}, // 0
		{"Bellevue, WA", 240000}, // 1
		{"Bellevue, WA", 260000}, // 2
		{"Bellevue, WA", 290000}, // 3
		{"Redmond, WA", 220000},  // 4
		{"Redmond, WA", 250000},  // 5
		{"Redmond, WA", 280000},  // 6
		{"Seattle, WA", 230000},  // 7
		{"Seattle, WA", 270000},  // 8
	}
	for _, row := range rows {
		r.MustAppend(relation.Tuple{relation.StringValue(row.n), relation.NumberValue(row.p)})
	}
	lo := &category.Node{
		Label: category.Label{Kind: category.LabelRange, Attr: "price", Lo: 200000, Hi: 250000},
		Tset:  []int{0, 1}, P: 0.5, Pw: 1,
	}
	hi := &category.Node{
		Label: category.Label{Kind: category.LabelRange, Attr: "price", Lo: 250000, Hi: 300000, HiInc: true},
		Tset:  []int{2, 3}, P: 0.5, Pw: 1,
	}
	bellevue := &category.Node{
		Label:    category.Label{Kind: category.LabelValue, Attr: "neighborhood", Value: "Bellevue, WA"},
		Children: []*category.Node{lo, hi},
		Tset:     []int{0, 1, 2, 3}, SubAttr: "price", P: 0.6, Pw: 0.4,
	}
	redmond := &category.Node{
		Label: category.Label{Kind: category.LabelValue, Attr: "neighborhood", Value: "Redmond, WA"},
		Tset:  []int{4, 5, 6}, P: 0.3, Pw: 1,
	}
	seattle := &category.Node{
		Label: category.Label{Kind: category.LabelValue, Attr: "neighborhood", Value: "Seattle, WA"},
		Tset:  []int{7, 8}, P: 0.1, Pw: 1,
	}
	root := &category.Node{
		Label:    category.Label{Kind: category.LabelAll},
		Children: []*category.Node{bellevue, redmond, seattle},
		Tset:     []int{0, 1, 2, 3, 4, 5, 6, 7, 8},
		SubAttr:  "neighborhood", P: 1, Pw: 0.2,
	}
	tree := &category.Tree{Root: root, R: r, K: 1, LevelAttrs: []string{"neighborhood", "price"}}
	if err := tree.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return tree
}

func intentFor(sql string) *Intent {
	return &Intent{Query: sqlparse.MustParse(sql)}
}

func TestAllScenarioDeterministic(t *testing.T) {
	tree := fixtureTree(t)
	// User wants Bellevue homes 200k-240k: explores root (SHOWCAT on
	// neighborhood since condition present), reads 3 hood labels, explores
	// Bellevue (SHOWCAT on price), reads 2 price labels, explores only the
	// low bucket (SHOWTUPLES), reads its 2 tuples.
	in := intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 200000 AND 240000")
	out := (&Explorer{K: 1}).All(tree, in)
	if out.LabelsExamined != 5 {
		t.Errorf("LabelsExamined = %d; want 5", out.LabelsExamined)
	}
	if out.TuplesExamined != 2 {
		t.Errorf("TuplesExamined = %d; want 2", out.TuplesExamined)
	}
	if out.RelevantFound != 2 || out.RelevantTotal != 2 {
		t.Errorf("Relevant = %d/%d; want 2/2", out.RelevantFound, out.RelevantTotal)
	}
	if got := out.Cost(1); got != 7 {
		t.Errorf("Cost = %v; want 7", got)
	}
	if got := out.Cost(0.5); got != 4.5 {
		t.Errorf("Cost(K=0.5) = %v; want 4.5", got)
	}
}

func TestAllScenarioNoPriceCondition(t *testing.T) {
	tree := fixtureTree(t)
	// No condition on price: at Bellevue the user chooses SHOWTUPLES (she
	// wants all prices), examining all 4 Bellevue tuples.
	in := intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA')")
	out := (&Explorer{K: 1}).All(tree, in)
	if out.LabelsExamined != 3 || out.TuplesExamined != 4 {
		t.Errorf("labels/tuples = %d/%d; want 3/4", out.LabelsExamined, out.TuplesExamined)
	}
	if out.RelevantFound != 4 {
		t.Errorf("RelevantFound = %d; want 4", out.RelevantFound)
	}
}

func TestAllScenarioNoConditionsScansEverything(t *testing.T) {
	tree := fixtureTree(t)
	in := intentFor("SELECT * FROM ListProperty")
	out := (&Explorer{K: 1}).All(tree, in)
	// No condition on neighborhood: SHOWTUPLES at the root.
	if out.TuplesExamined != 9 || out.LabelsExamined != 0 {
		t.Errorf("tuples/labels = %d/%d; want 9/0", out.TuplesExamined, out.LabelsExamined)
	}
}

func TestAllScenarioMultiHood(t *testing.T) {
	tree := fixtureTree(t)
	in := intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Redmond, WA','Seattle, WA')")
	out := (&Explorer{K: 1}).All(tree, in)
	// 3 hood labels + Redmond tuples (3) + Seattle tuples (2).
	if out.LabelsExamined != 3 || out.TuplesExamined != 5 {
		t.Errorf("labels/tuples = %d/%d; want 3/5", out.LabelsExamined, out.TuplesExamined)
	}
	if out.CategoriesExplored != 2 {
		t.Errorf("CategoriesExplored = %d; want 2", out.CategoriesExplored)
	}
}

func TestOneScenarioStopsAtFirstRelevant(t *testing.T) {
	tree := fixtureTree(t)
	in := intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 230000 AND 240000")
	out := (&Explorer{K: 1}).One(tree, in)
	// Root SHOWCAT: reads Bellevue label (1), explores; Bellevue SHOWCAT:
	// reads low-bucket label (1), explores; SHOWTUPLES scans tuple 0 (not
	// relevant: 210000) then tuple 1 (relevant).
	if !out.Found {
		t.Fatal("should find a relevant tuple")
	}
	if out.LabelsExamined != 2 || out.TuplesExamined != 2 {
		t.Errorf("labels/tuples = %d/%d; want 2/2", out.LabelsExamined, out.TuplesExamined)
	}
	if out.RelevantFound != 1 {
		t.Errorf("RelevantFound = %d; want 1", out.RelevantFound)
	}
}

func TestOneScenarioLaterSibling(t *testing.T) {
	tree := fixtureTree(t)
	in := intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')")
	out := (&Explorer{K: 1}).One(tree, in)
	// Reads Bellevue, Redmond, Seattle labels (3), explores Seattle,
	// SHOWTUPLES finds tuple 7 immediately.
	if out.LabelsExamined != 3 || out.TuplesExamined != 1 || !out.Found {
		t.Errorf("labels/tuples/found = %d/%d/%v; want 3/1/true", out.LabelsExamined, out.TuplesExamined, out.Found)
	}
}

func TestOneScenarioEmptyDrilldownResumes(t *testing.T) {
	tree := fixtureTree(t)
	// Price condition overlapping the low bucket but matching no Bellevue
	// tuple (215000-235000 range matches tuple at 240000? no: 240000 > hi;
	// tuple 0 at 210000 < lo). Bellevue yields nothing; Redmond has 220000.
	in := intentFor("SELECT * FROM ListProperty WHERE price BETWEEN 215000 AND 235000")
	out := (&Explorer{K: 1}).One(tree, in)
	// No neighborhood condition: root is... wantsShowCat(neighborhood) =
	// false -> SHOWTUPLES at root; scans tuples 0..3 then 4 (220000 matches
	// at index... tuple0 210000 no, 1 240000 no, 2,3 no, 4 220000 yes) = 5.
	if !out.Found || out.TuplesExamined != 5 {
		t.Errorf("tuples/found = %d/%v; want 5/true", out.TuplesExamined, out.Found)
	}
}

func TestOneScenarioNotFound(t *testing.T) {
	tree := fixtureTree(t)
	in := intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Kirkland, WA')")
	out := (&Explorer{K: 1}).One(tree, in)
	if out.Found || out.RelevantFound != 0 {
		t.Errorf("found = %v relevant = %d; want false/0", out.Found, out.RelevantFound)
	}
	if out.RelevantTotal != 0 {
		t.Errorf("RelevantTotal = %d; want 0", out.RelevantTotal)
	}
}

func TestFlatBaselines(t *testing.T) {
	tree := fixtureTree(t)
	in := intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Redmond, WA')")
	all := FlatAll(tree, in)
	if all.TuplesExamined != 9 || all.RelevantFound != 3 || all.LabelsExamined != 0 {
		t.Errorf("FlatAll = %+v", all)
	}
	one := FlatOne(tree, in)
	// First Redmond tuple is at index 4 -> 5 tuples examined.
	if one.TuplesExamined != 5 || !one.Found {
		t.Errorf("FlatOne = %+v", one)
	}
}

func TestNormalizedCost(t *testing.T) {
	o := Outcome{TuplesExamined: 10, LabelsExamined: 4, RelevantFound: 2}
	if got := o.NormalizedCost(1); got != 7 {
		t.Errorf("NormalizedCost = %v; want 7", got)
	}
	if got := (Outcome{}).NormalizedCost(1); !math.IsInf(got, 1) {
		t.Errorf("NormalizedCost with 0 found = %v; want +Inf", got)
	}
}

func TestNoiseDeterministicWithoutRng(t *testing.T) {
	tree := fixtureTree(t)
	in := &Intent{
		Query:        sqlparse.MustParse("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA')"),
		ExploreNoise: 1, IgnoreNoise: 1, ShowCatNoise: 1, // ignored without Rng
	}
	a := (&Explorer{K: 1}).All(tree, in)
	b := (&Explorer{K: 1}).All(tree, in)
	if a != b {
		t.Fatalf("deterministic intent produced different outcomes: %+v vs %+v", a, b)
	}
}

func TestIgnoreNoiseReducesFound(t *testing.T) {
	tree := fixtureTree(t)
	rng := rand.New(rand.NewSource(42))
	sawMiss := false
	for trial := 0; trial < 50 && !sawMiss; trial++ {
		in := &Intent{
			Query:       sqlparse.MustParse("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 200000 AND 300000"),
			Rng:         rng,
			IgnoreNoise: 0.9,
		}
		out := (&Explorer{K: 1}).All(tree, in)
		if out.RelevantFound < out.RelevantTotal {
			sawMiss = true
		}
	}
	if !sawMiss {
		t.Fatal("high IgnoreNoise never caused a missed relevant tuple in 50 trials")
	}
}

func TestExploreNoiseIncreasesCost(t *testing.T) {
	tree := fixtureTree(t)
	rng := rand.New(rand.NewSource(7))
	base := (&Explorer{K: 1}).All(tree, intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')"))
	sawExtra := false
	for trial := 0; trial < 50 && !sawExtra; trial++ {
		in := &Intent{
			Query:        sqlparse.MustParse("SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')"),
			Rng:          rng,
			ExploreNoise: 0.9,
		}
		out := (&Explorer{K: 1}).All(tree, in)
		if out.Cost(1) > base.Cost(1) {
			sawExtra = true
		}
	}
	if !sawExtra {
		t.Fatal("high ExploreNoise never increased cost in 50 trials")
	}
}

// TestAllFindsEveryReachableRelevant is the key soundness property of the
// deterministic ALL exploration: the user finds every relevant tuple,
// because categories overlapping her query are always explored.
func TestAllFindsEveryReachableRelevant(t *testing.T) {
	// Build real trees over random data and check RelevantFound ==
	// RelevantTotal for deterministic intents drawn from the workload shape.
	queries := make([]string, 60)
	hoods := []string{"Bellevue, WA", "Redmond, WA", "Seattle, WA", "Issaquah, WA"}
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT * FROM ListProperty WHERE neighborhood IN ('%s') AND price BETWEEN %d AND %d",
			hoods[i%4], 200000+(i%3)*25000, 250000+(i%3)*25000)
	}
	w, err := workload.ParseStrings(queries)
	if err != nil {
		t.Fatal(err)
	}
	wstats := workload.Preprocess(w, workload.Config{Intervals: map[string]float64{"price": 25000}})

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := relation.MustSchema(
			relation.Attribute{Name: "neighborhood", Type: relation.Categorical},
			relation.Attribute{Name: "price", Type: relation.Numeric},
		)
		r := relation.New("ListProperty", schema)
		n := 50 + rng.Intn(300)
		for i := 0; i < n; i++ {
			r.MustAppend(relation.Tuple{
				relation.StringValue(hoods[rng.Intn(len(hoods))]),
				relation.NumberValue(200000 + float64(rng.Intn(20))*5000),
			})
		}
		c := category.NewCategorizer(wstats, category.Options{M: 10, X: 0.05})
		tree, err := c.Categorize(r, nil)
		if err != nil || tree.Validate() != nil {
			t.Logf("seed %d: bad tree: %v", seed, err)
			return false
		}
		in := &Intent{Query: sqlparse.MustParse(queries[rng.Intn(len(queries))])}
		out := (&Explorer{K: 1}).All(tree, in)
		if out.RelevantFound != out.RelevantTotal {
			t.Logf("seed %d: found %d of %d relevant", seed, out.RelevantFound, out.RelevantTotal)
			return false
		}
		// Cost can never exceed scanning everything plus reading every label.
		maxCost := float64(r.Len() + tree.NodeCount())
		if out.Cost(1) > maxCost {
			t.Logf("seed %d: cost %v exceeds bound %v", seed, out.Cost(1), maxCost)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestOneNeverExaminesMoreThanAll: for the same deterministic intent the ONE
// exploration examines at most as many tuples as the ALL exploration plus
// labels bounded by the tree size.
func TestOneCostBounded(t *testing.T) {
	tree := fixtureTree(t)
	intents := []string{
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA')",
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Redmond, WA','Seattle, WA')",
		"SELECT * FROM ListProperty WHERE price BETWEEN 250000 AND 300000",
		"SELECT * FROM ListProperty",
	}
	for _, sql := range intents {
		in := intentFor(sql)
		one := (&Explorer{K: 1}).One(tree, in)
		all := (&Explorer{K: 1}).All(tree, in)
		if one.TuplesExamined > all.TuplesExamined {
			t.Errorf("%s: ONE examined %d tuples > ALL %d", sql, one.TuplesExamined, all.TuplesExamined)
		}
		if one.RelevantFound > 1 {
			t.Errorf("%s: ONE found %d relevant tuples; want ≤ 1", sql, one.RelevantFound)
		}
	}
}

func TestRecognitionProbDeterministicWithoutRng(t *testing.T) {
	in := &Intent{Query: sqlparse.MustParse("SELECT * FROM T"), ScanFatigue: 5}
	if p := in.recognitionProb(100000); p != 1 {
		t.Fatalf("recognitionProb without Rng = %v; want 1", p)
	}
}

func TestRecognitionProbDecaysAndFloors(t *testing.T) {
	in := &Intent{
		Query:       sqlparse.MustParse("SELECT * FROM T"),
		Rng:         rand.New(rand.NewSource(1)),
		ScanFatigue: 1,
	}
	if p := in.recognitionProb(0); p != 1 {
		t.Fatalf("recognitionProb(0) = %v; want 1", p)
	}
	if p := in.recognitionProb(500); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("recognitionProb(500) = %v; want 0.5", p)
	}
	if p := in.recognitionProb(100000); p != 0.05 {
		t.Fatalf("recognitionProb(huge) = %v; want floor 0.05", p)
	}
}

func TestFatigueReducesRelevantFoundInLongLists(t *testing.T) {
	// A flat 1-node tree with many tuples: without fatigue the ALL scan
	// finds everything; with strong fatigue it misses a chunk.
	schema := relation.MustSchema(
		relation.Attribute{Name: "n", Type: relation.Categorical},
	)
	r := relation.New("T", schema)
	for i := 0; i < 2000; i++ {
		r.MustAppend(relation.Tuple{relation.StringValue("x")})
	}
	root := &category.Node{Label: category.Label{Kind: category.LabelAll},
		Tset: r.Select(nil), P: 1, Pw: 1}
	tree := &category.Tree{Root: root, R: r, K: 1}
	q := sqlparse.MustParse("SELECT * FROM T WHERE n IN ('x')")
	ex := &Explorer{K: 1}

	noFatigue := ex.All(tree, &Intent{Query: q, Rng: rand.New(rand.NewSource(3))})
	if noFatigue.RelevantFound != 2000 {
		t.Fatalf("without fatigue found %d of 2000", noFatigue.RelevantFound)
	}
	fatigued := ex.All(tree, &Intent{Query: q, Rng: rand.New(rand.NewSource(3)), ScanFatigue: 1})
	if fatigued.RelevantFound >= 1000 {
		t.Fatalf("with fatigue (recognition floor 0.05 at 2000 tuples) found %d; want far fewer", fatigued.RelevantFound)
	}
	if fatigued.TuplesExamined != 2000 {
		t.Fatalf("fatigue must not change items examined: %d", fatigued.TuplesExamined)
	}
}

func TestFatigueSparesShortLists(t *testing.T) {
	tree := fixtureTree(t)
	in := &Intent{
		Query:       sqlparse.MustParse("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA')"),
		Rng:         rand.New(rand.NewSource(5)),
		ScanFatigue: 0.5, // at 4 tuples recognition ≈ 0.998
	}
	miss := 0
	for trial := 0; trial < 30; trial++ {
		out := (&Explorer{K: 1}).All(tree, in)
		if out.RelevantFound < out.RelevantTotal {
			miss++
		}
	}
	if miss > 3 {
		t.Fatalf("short leaf scans missed relevant tuples in %d/30 trials", miss)
	}
}

func TestFatigueOneScenarioKeepsScanning(t *testing.T) {
	// In the ONE scenario an overlooked relevant tuple means the scan
	// continues; with total fatigue floor the user can still succeed later.
	schema := relation.MustSchema(relation.Attribute{Name: "n", Type: relation.Categorical})
	r := relation.New("T", schema)
	for i := 0; i < 3000; i++ {
		r.MustAppend(relation.Tuple{relation.StringValue("x")})
	}
	root := &category.Node{Label: category.Label{Kind: category.LabelAll},
		Tset: r.Select(nil), P: 1, Pw: 1}
	tree := &category.Tree{Root: root, R: r, K: 1}
	rng := rand.New(rand.NewSource(9))
	totalExamined := 0
	for trial := 0; trial < 50; trial++ {
		in := &Intent{
			Query:       sqlparse.MustParse("SELECT * FROM T WHERE n IN ('x')"),
			Rng:         rng,
			ScanFatigue: 2,
		}
		out := (&Explorer{K: 1}).One(tree, in)
		if !out.Found {
			t.Fatal("with a 0.05 recognition floor over 3000 relevant tuples the user should find one")
		}
		totalExamined += out.TuplesExamined
	}
	// With recognition 0.05, the expected scan length to the first
	// recognized tuple is ≈ 1/0.05 ≈ 20; without fatigue it would be 1.
	if avg := float64(totalExamined) / 50; avg < 2 {
		t.Fatalf("fatigued ONE scans averaged %.1f tuples; expected noticeably more than 1", avg)
	}
}

func TestFewMatchesOneAndAll(t *testing.T) {
	tree := fixtureTree(t)
	intents := []string{
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA')",
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Redmond, WA','Seattle, WA')",
		"SELECT * FROM ListProperty WHERE price BETWEEN 215000 AND 235000",
		"SELECT * FROM ListProperty",
	}
	ex := &Explorer{K: 1}
	for _, sql := range intents {
		in := intentFor(sql)
		one := ex.One(tree, in)
		few1 := ex.Few(tree, in, 1)
		if one.TuplesExamined != few1.TuplesExamined || one.LabelsExamined != few1.LabelsExamined ||
			one.Found != few1.Found {
			t.Errorf("%s: Few(1) %+v != One %+v", sql, few1, one)
		}
		all := ex.All(tree, in)
		fewAll := ex.Few(tree, in, 1<<30)
		if all.TuplesExamined != fewAll.TuplesExamined || all.RelevantFound != fewAll.RelevantFound {
			t.Errorf("%s: Few(inf) %+v != All %+v", sql, fewAll, all)
		}
	}
}

func TestFewMonotoneInK(t *testing.T) {
	tree := fixtureTree(t)
	in := intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA')")
	ex := &Explorer{K: 1}
	prev := -1.0
	for _, k := range []int{1, 2, 3, 4, 100} {
		out := ex.Few(tree, in, k)
		cost := out.Cost(1)
		if cost < prev {
			t.Fatalf("Few cost not monotone in k: k=%d cost=%v prev=%v", k, cost, prev)
		}
		if out.RelevantFound > k {
			t.Fatalf("Few(k=%d) found %d > k", k, out.RelevantFound)
		}
		prev = cost
	}
}

func TestFewClampsK(t *testing.T) {
	tree := fixtureTree(t)
	in := intentFor("SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')")
	a := (&Explorer{K: 1}).Few(tree, in, 0)
	b := (&Explorer{K: 1}).Few(tree, in, 1)
	if a != b {
		t.Fatalf("Few(0) should clamp to 1: %+v vs %+v", a, b)
	}
}
