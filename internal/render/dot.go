package render

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/category"
)

// DOTOptions controls Graphviz export.
type DOTOptions struct {
	// MaxDepth limits exported levels; 0 means all.
	MaxDepth int
	// MaxChildren limits children per node; elided subtrees become one
	// summary node. 0 means all.
	MaxChildren int
	// ShowProbabilities appends P/Pw to node labels.
	ShowProbabilities bool
}

// DOT writes the category tree as a Graphviz digraph — the hand-off point to
// the visualization step the paper positions after categorization (§2:
// "given the category structure proposed in this paper, we can use
// visualization techniques … to visually display the tree").
func DOT(w io.Writer, t *category.Tree, opts DOTOptions) error {
	var err error
	write := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	write("digraph categorization {\n")
	write("  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	id := 0
	var rec func(n *category.Node, depth int) int
	rec = func(n *category.Node, depth int) int {
		me := id
		id++
		label := fmt.Sprintf("%s\\n%d tuples", dotEscape(n.Label.String()), n.Size())
		if opts.ShowProbabilities && n.Label.Kind != category.LabelAll {
			label += fmt.Sprintf("\\nP=%.2f", n.P)
		}
		write("  n%d [label=\"%s\"];\n", me, label)
		if n.IsLeaf() {
			return me
		}
		if opts.MaxDepth > 0 && depth+1 > opts.MaxDepth {
			write("  n%d [label=\"… %d subcategories\", style=dashed];\n", id, len(n.Children))
			write("  n%d -> n%d;\n", me, id)
			id++
			return me
		}
		limit := len(n.Children)
		if opts.MaxChildren > 0 && limit > opts.MaxChildren {
			limit = opts.MaxChildren
		}
		for _, c := range n.Children[:limit] {
			child := rec(c, depth+1)
			write("  n%d -> n%d;\n", me, child)
		}
		if limit < len(n.Children) {
			write("  n%d [label=\"… %d more categories\", style=dashed];\n", id, len(n.Children)-limit)
			write("  n%d -> n%d;\n", me, id)
			id++
		}
		return me
	}
	rec(t.Root, 0)
	write("}\n")
	return err
}

// DOTString renders the tree to a Graphviz string.
func DOTString(t *category.Tree, opts DOTOptions) string {
	var b strings.Builder
	_ = DOT(&b, t, opts) // strings.Builder writes cannot fail
	return b.String()
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
