// Package render produces the textual views of category trees and result
// tables that the CLI, the examples, and the experiment reports print — the
// plain-text equivalent of the paper's treeview control.
package render

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/category"
	"repro/internal/relation"
)

// TreeOptions controls tree rendering.
type TreeOptions struct {
	// MaxDepth limits how many levels are printed; 0 means all.
	MaxDepth int
	// MaxChildren limits children printed per node; 0 means all. A summary
	// line reports elisions.
	MaxChildren int
	// ShowProbabilities appends P and Pw to each line.
	ShowProbabilities bool
	// ShowTuples prints the tuples under each leaf (requires Relation).
	ShowTuples bool
	// MaxTuples limits tuples printed per leaf when ShowTuples is set.
	MaxTuples int
}

// Tree writes an indented rendering of the category tree to w.
func Tree(w io.Writer, t *category.Tree, opts TreeOptions) error {
	var err error
	write := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	var rec func(n *category.Node, depth int)
	rec = func(n *category.Node, depth int) {
		if err != nil {
			return
		}
		indent := strings.Repeat("  ", depth)
		line := fmt.Sprintf("%s%s (%d)", indent, n.Label, n.Size())
		if opts.ShowProbabilities {
			line += fmt.Sprintf("  [P=%.3f Pw=%.3f]", n.P, n.Pw)
		}
		write("%s\n", line)
		if n.IsLeaf() {
			if opts.ShowTuples && t.R != nil {
				limit := len(n.Tset)
				if opts.MaxTuples > 0 && limit > opts.MaxTuples {
					limit = opts.MaxTuples
				}
				for _, i := range n.Tset[:limit] {
					write("%s  · %s\n", indent, RowString(t.R, i))
				}
				if limit < len(n.Tset) {
					write("%s  · … %d more\n", indent, len(n.Tset)-limit)
				}
			}
			return
		}
		if opts.MaxDepth > 0 && depth+1 > opts.MaxDepth {
			write("%s  … %d subcategories\n", indent, len(n.Children))
			return
		}
		limit := len(n.Children)
		if opts.MaxChildren > 0 && limit > opts.MaxChildren {
			limit = opts.MaxChildren
		}
		for _, c := range n.Children[:limit] {
			rec(c, depth+1)
		}
		if limit < len(n.Children) {
			write("%s  … %d more categories\n", indent, len(n.Children)-limit)
		}
	}
	rec(t.Root, 0)
	return err
}

// TreeString renders the tree to a string.
func TreeString(t *category.Tree, opts TreeOptions) string {
	var b strings.Builder
	// strings.Builder writes cannot fail.
	_ = Tree(&b, t, opts)
	return b.String()
}

// RowString renders one tuple as "attr=value" pairs for the first few
// attributes (location, price, and size columns first when present).
func RowString(r *relation.Relation, row int) string {
	s := r.Schema()
	t := r.Row(row)
	parts := make([]string, 0, 6)
	limit := s.Len()
	if limit > 6 {
		limit = 6
	}
	for i := 0; i < limit; i++ {
		a := s.Attr(i)
		if a.Type == relation.Categorical {
			parts = append(parts, fmt.Sprintf("%s=%s", a.Name, t[i].Str))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%g", a.Name, t[i].Num))
		}
	}
	if s.Len() > limit {
		parts = append(parts, "…")
	}
	return strings.Join(parts, " ")
}

// Table writes rows as a fixed-width text table. headers names the columns;
// each row must have the same width.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(headers))
		for i := range headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(sep, "  ")); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
