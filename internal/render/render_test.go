package render

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/category"
	"repro/internal/relation"
)

func sampleTree(t *testing.T) *category.Tree {
	t.Helper()
	schema := relation.MustSchema(
		relation.Attribute{Name: "hood", Type: relation.Categorical},
		relation.Attribute{Name: "price", Type: relation.Numeric},
	)
	r := relation.New("T", schema)
	for i := 0; i < 6; i++ {
		hood := "A"
		if i >= 3 {
			hood = "B"
		}
		r.MustAppend(relation.Tuple{relation.StringValue(hood), relation.NumberValue(float64(100 + i))})
	}
	a := &category.Node{Label: category.Label{Kind: category.LabelValue, Attr: "hood", Value: "A"}, Tset: []int{0, 1, 2}, P: 0.7, Pw: 1}
	b := &category.Node{Label: category.Label{Kind: category.LabelValue, Attr: "hood", Value: "B"}, Tset: []int{3, 4, 5}, P: 0.2, Pw: 1}
	root := &category.Node{Label: category.Label{Kind: category.LabelAll}, Children: []*category.Node{a, b},
		Tset: []int{0, 1, 2, 3, 4, 5}, SubAttr: "hood", P: 1, Pw: 0.3}
	return &category.Tree{Root: root, R: r, K: 1, LevelAttrs: []string{"hood"}}
}

func TestTreeString(t *testing.T) {
	out := TreeString(sampleTree(t), TreeOptions{})
	for _, want := range []string{"ALL (6)", "hood: A (3)", "hood: B (3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "P=") {
		t.Error("probabilities shown without ShowProbabilities")
	}
}

func TestTreeProbabilities(t *testing.T) {
	out := TreeString(sampleTree(t), TreeOptions{ShowProbabilities: true})
	if !strings.Contains(out, "P=0.700") || !strings.Contains(out, "Pw=0.300") {
		t.Errorf("probabilities missing:\n%s", out)
	}
}

func TestTreeMaxChildren(t *testing.T) {
	out := TreeString(sampleTree(t), TreeOptions{MaxChildren: 1})
	if !strings.Contains(out, "… 1 more categories") {
		t.Errorf("elision marker missing:\n%s", out)
	}
	if strings.Contains(out, "hood: B") {
		t.Errorf("second child should be elided:\n%s", out)
	}
}

func TestTreeMaxDepth(t *testing.T) {
	out := TreeString(sampleTree(t), TreeOptions{MaxDepth: 0})
	if !strings.Contains(out, "hood: A") {
		t.Error("depth 0 option should mean unlimited")
	}
	tree := sampleTree(t)
	// Add a second level under A to exercise the cut.
	a := tree.Root.Children[0]
	a.SubAttr = "price"
	a.Children = []*category.Node{
		{Label: category.Label{Kind: category.LabelRange, Attr: "price", Lo: 100, Hi: 103, HiInc: true}, Tset: []int{0, 1, 2}, P: 1, Pw: 1},
	}
	out = TreeString(tree, TreeOptions{MaxDepth: 1})
	if !strings.Contains(out, "… 1 subcategories") {
		t.Errorf("MaxDepth cut marker missing:\n%s", out)
	}
	if strings.Contains(out, "price: 100-103") {
		t.Errorf("level 2 should be hidden:\n%s", out)
	}
}

func TestTreeShowTuples(t *testing.T) {
	out := TreeString(sampleTree(t), TreeOptions{ShowTuples: true, MaxTuples: 2})
	if !strings.Contains(out, "hood=A") {
		t.Errorf("tuples missing:\n%s", out)
	}
	if !strings.Contains(out, "· … 1 more") {
		t.Errorf("tuple elision missing:\n%s", out)
	}
}

func TestRowString(t *testing.T) {
	tree := sampleTree(t)
	s := RowString(tree.R, 0)
	if !strings.Contains(s, "hood=A") || !strings.Contains(s, "price=100") {
		t.Errorf("RowString = %q", s)
	}
}

func TestRowStringTruncatesWideSchemas(t *testing.T) {
	attrs := make([]relation.Attribute, 10)
	tuple := make(relation.Tuple, 10)
	for i := range attrs {
		attrs[i] = relation.Attribute{Name: strings.Repeat("a", i+1), Type: relation.Numeric}
		tuple[i] = relation.NumberValue(float64(i))
	}
	r := relation.New("wide", relation.MustSchema(attrs...))
	r.MustAppend(tuple)
	s := RowString(r, 0)
	if !strings.Contains(s, "…") {
		t.Errorf("wide row not truncated: %q", s)
	}
}

func TestTable(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"Task", "Cost"}, [][]string{{"1", "17.1"}, {"2", "10.5"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Task") || !strings.Contains(lines[1], "----") {
		t.Errorf("header malformed:\n%s", out)
	}
}

func TestTableRaggedRow(t *testing.T) {
	var b strings.Builder
	if err := Table(&b, []string{"A", "B"}, [][]string{{"only"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "only") {
		t.Error("short row dropped")
	}
}

// failWriter errors after n writes to exercise error propagation.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestTreeWriteError(t *testing.T) {
	if err := Tree(&failWriter{}, sampleTree(t), TreeOptions{}); err == nil {
		t.Fatal("write error not propagated")
	}
}

func TestTableWriteError(t *testing.T) {
	if err := Table(&failWriter{n: 1}, []string{"A"}, [][]string{{"x"}}); err == nil {
		t.Fatal("write error not propagated")
	}
}

func TestDOTOutput(t *testing.T) {
	out := DOTString(sampleTree(t), DOTOptions{})
	for _, want := range []string{
		"digraph categorization {",
		`label="ALL\n6 tuples"`,
		`label="hood: A\n3 tuples"`,
		"n0 -> n1;",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestDOTProbabilitiesAndBounds(t *testing.T) {
	tree := sampleTree(t)
	a := tree.Root.Children[0]
	a.SubAttr = "price"
	a.Children = []*category.Node{
		{Label: category.Label{Kind: category.LabelRange, Attr: "price", Lo: 100, Hi: 103, HiInc: true},
			Tset: []int{0, 1, 2}, P: 1, Pw: 1},
	}
	out := DOTString(tree, DOTOptions{ShowProbabilities: true, MaxDepth: 1, MaxChildren: 1})
	if !strings.Contains(out, "P=0.70") {
		t.Errorf("probabilities missing:\n%s", out)
	}
	if !strings.Contains(out, "… 1 more categories") {
		t.Errorf("width elision missing:\n%s", out)
	}
	if !strings.Contains(out, "… 1 subcategories") {
		t.Errorf("depth elision missing:\n%s", out)
	}
	if strings.Contains(out, "price: 100-103") {
		t.Errorf("depth bound violated:\n%s", out)
	}
}

func TestDOTEscapes(t *testing.T) {
	tree := sampleTree(t)
	tree.Root.Children[0].Label.Value = `A"quote\slash`
	out := DOTString(tree, DOTOptions{})
	if !strings.Contains(out, `A\"quote\\slash`) {
		t.Errorf("escaping broken:\n%s", out)
	}
}

func TestDOTWriteError(t *testing.T) {
	if err := DOT(&failWriter{}, sampleTree(t), DOTOptions{}); err == nil {
		t.Fatal("write error not propagated")
	}
}
