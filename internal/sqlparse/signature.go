package sqlparse

import (
	"sort"
	"strings"

	"repro/internal/relation"
)

// Signature returns a canonical key for the query's selection semantics:
// two queries that select the same tuple-set from the same table — and
// therefore categorize to the same tree under fixed workload statistics —
// share one signature regardless of SQL spelling. Normalizations applied:
//
//   - table and attribute names are lowercased;
//   - the column list is lowercased, deduplicated, and sorted ('*' stays
//     distinct from any explicit list);
//   - conjuncts are sorted by attribute (the parser has already merged
//     repeated attributes conjunctively);
//   - IN-list members are deduplicated and sorted;
//   - range bounds are rendered in a spelling-independent interval form, so
//     "p BETWEEN 1 AND 2", "p >= 1 AND p <= 2", and "1 <= p AND p <= 2"
//     coincide, as do "p = 5" and "p BETWEEN 5 AND 5".
//
// The signature is a printable string (control-character separators keep
// quoted values unambiguous) intended as a cache key; it is not SQL.
func (q *Query) Signature() string {
	var b strings.Builder
	b.Grow(64)
	b.WriteString("t:")
	b.WriteString(strings.ToLower(q.Table))
	b.WriteString("\x1ec:")
	if len(q.Columns) == 0 {
		b.WriteString("*")
	} else {
		cols := make([]string, 0, len(q.Columns))
		for _, c := range q.Columns {
			cols = append(cols, strings.ToLower(c))
		}
		sort.Strings(cols)
		prev := ""
		for i, c := range cols {
			if i > 0 && c == prev {
				continue
			}
			if i > 0 {
				b.WriteByte('\x1f')
			}
			b.WriteString(c)
			prev = c
		}
	}
	conds := make([]*Condition, len(q.Conds))
	copy(conds, q.Conds)
	sort.Slice(conds, func(i, j int) bool {
		return strings.ToLower(conds[i].Attr) < strings.ToLower(conds[j].Attr)
	})
	for _, c := range conds {
		b.WriteString("\x1e")
		c.writeSignature(&b)
	}
	return b.String()
}

// writeSignature appends the condition's canonical form to b.
func (c *Condition) writeSignature(b *strings.Builder) {
	b.WriteString(strings.ToLower(c.Attr))
	if !c.IsRange {
		b.WriteString("\x1din")
		vals := append([]string(nil), c.Values...)
		sort.Strings(vals)
		prev := ""
		for i, v := range vals {
			if i > 0 && v == prev {
				continue
			}
			b.WriteByte('\x1f')
			b.WriteString(v)
			prev = v
		}
		return
	}
	b.WriteString("\x1drg")
	b.WriteByte('\x1f')
	if !c.LoSet {
		b.WriteString("(-inf")
	} else {
		if c.LoStrict {
			b.WriteByte('(')
		} else {
			b.WriteByte('[')
		}
		b.WriteString(sigNum(c.Lo))
	}
	b.WriteByte(',')
	if !c.HiSet {
		b.WriteString("+inf)")
	} else {
		b.WriteString(sigNum(c.Hi))
		if c.HiStrict {
			b.WriteByte(')')
		} else {
			b.WriteByte(']')
		}
	}
}

// sigNum renders a bound canonically: -0 folds into 0, integers print
// without exponent or trailing zeros, and everything else uses the shortest
// round-trip float form. The canonicalization is shared with the relation
// layer's conjunct-bitmap cache (relation.SigNum), so both cache key spaces
// spell numbers identically.
func sigNum(v float64) string { return relation.SigNum(v) }
