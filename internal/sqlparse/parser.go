package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL SELECT statement in the workload dialect:
//
//	SELECT * | col[, col…]
//	FROM table
//	[WHERE cond [AND cond]…]
//
// where each cond is one of
//
//	attr IN ('v1' [, 'v2'…])        — categorical membership
//	attr IN (n1 [, n2…])            — numeric membership (folded to [min,max])
//	attr = 'v' | attr = n
//	attr BETWEEN n1 AND n2
//	attr < n | attr <= n | attr > n | attr >= n
//
// Conditions on the same attribute are merged conjunctively. A trailing
// semicolon is permitted.
func Parse(src string) (*Query, error) {
	toks, err := lex(strings.TrimSuffix(strings.TrimSpace(src), ";"))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, fmt.Errorf("sqlparse: %w (in %q)", err, truncate(src, 120))
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and static queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword consumes an identifier token equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) error {
	t := p.peek()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("expected %s at offset %d, found %s", strings.ToUpper(kw), t.pos, describe(t))
	}
	p.advance()
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) query() (*Query, error) {
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.peek().kind == tokStar {
		p.advance()
	} else {
		for {
			t := p.advance()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("expected column name at offset %d, found %s", t.pos, describe(t))
			}
			q.Columns = append(q.Columns, t.text)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	t := p.advance()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("expected table name at offset %d, found %s", t.pos, describe(t))
	}
	q.Table = t.text
	if p.isKeyword("WHERE") {
		p.advance()
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			if existing := q.Cond(cond.Attr); existing != nil {
				if err := existing.merge(cond); err != nil {
					return nil, err
				}
			} else {
				q.Conds = append(q.Conds, cond)
			}
			if !p.isKeyword("AND") {
				break
			}
			p.advance()
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("unexpected %s at offset %d", describe(t), t.pos)
	}
	return q, nil
}

func (p *parser) condition() (*Condition, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("expected attribute name at offset %d, found %s", t.pos, describe(t))
	}
	attr := t.text
	switch {
	case p.isKeyword("IN"):
		p.advance()
		return p.inList(attr)
	case p.isKeyword("BETWEEN"):
		p.advance()
		lo, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.number()
		if err != nil {
			return nil, err
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		return &Condition{Attr: attr, IsRange: true, Lo: lo, LoSet: true, Hi: hi, HiSet: true}, nil
	case p.peek().kind == tokOp:
		op := p.advance().text
		return p.comparison(attr, op)
	default:
		t := p.peek()
		return nil, fmt.Errorf("expected IN, BETWEEN or comparison after %q at offset %d, found %s", attr, t.pos, describe(t))
	}
}

// inList parses the parenthesized literal list of an IN condition. A list of
// string literals yields a categorical membership set; a list of numbers is
// folded into the interval [min, max] (the workload treats a discrete
// numeric IN as interest in that span).
func (p *parser) inList(attr string) (*Condition, error) {
	if t := p.advance(); t.kind != tokLParen {
		return nil, fmt.Errorf("expected '(' after IN at offset %d, found %s", t.pos, describe(t))
	}
	first := p.peek()
	switch first.kind {
	case tokString:
		cond := &Condition{Attr: attr}
		seen := make(map[string]struct{})
		for {
			t := p.advance()
			if t.kind != tokString {
				return nil, fmt.Errorf("expected string literal in IN list at offset %d, found %s", t.pos, describe(t))
			}
			if _, dup := seen[t.text]; !dup {
				seen[t.text] = struct{}{}
				cond.Values = append(cond.Values, t.text)
			}
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
		if t := p.advance(); t.kind != tokRParen {
			return nil, fmt.Errorf("expected ')' at offset %d, found %s", t.pos, describe(t))
		}
		return cond, nil
	case tokNumber:
		var lo, hi float64
		firstVal := true
		for {
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			if firstVal {
				lo, hi, firstVal = v, v, false
			} else {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
		if t := p.advance(); t.kind != tokRParen {
			return nil, fmt.Errorf("expected ')' at offset %d, found %s", t.pos, describe(t))
		}
		return &Condition{Attr: attr, IsRange: true, Lo: lo, LoSet: true, Hi: hi, HiSet: true}, nil
	default:
		return nil, fmt.Errorf("expected literal in IN list at offset %d, found %s", first.pos, describe(first))
	}
}

func (p *parser) comparison(attr, op string) (*Condition, error) {
	t := p.advance()
	switch t.kind {
	case tokString:
		if op != "=" {
			return nil, fmt.Errorf("operator %s not supported on string literals at offset %d", op, t.pos)
		}
		return &Condition{Attr: attr, Values: []string{t.text}}, nil
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed number %q at offset %d", t.text, t.pos)
		}
		c := &Condition{Attr: attr, IsRange: true}
		switch op {
		case "=":
			c.Lo, c.LoSet, c.Hi, c.HiSet = v, true, v, true
		case "<":
			c.Hi, c.HiSet, c.HiStrict = v, true, true
		case "<=":
			c.Hi, c.HiSet = v, true
		case ">":
			c.Lo, c.LoSet, c.LoStrict = v, true, true
		case ">=":
			c.Lo, c.LoSet = v, true
		default:
			return nil, fmt.Errorf("unsupported operator %s at offset %d", op, t.pos)
		}
		return c, nil
	default:
		return nil, fmt.Errorf("expected literal after %s at offset %d, found %s", op, t.pos, describe(t))
	}
}

func (p *parser) number() (float64, error) {
	t := p.advance()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("expected number at offset %d, found %s", t.pos, describe(t))
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed number %q at offset %d", t.text, t.pos)
	}
	return v, nil
}

func describe(t token) string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%s %q", t.kind, t.text)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
