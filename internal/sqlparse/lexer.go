// Package sqlparse parses the SPJ SQL dialect found in the workload logs the
// categorizer learns from: SELECT queries over a single wide table with a
// WHERE clause that is a conjunction of per-attribute selection conditions
// (IN lists, equality, comparisons, BETWEEN). The paper's technique needs
// exactly this much SQL: it mines logged query strings for the attributes
// and values users filter on.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokOp // = <> < <= > >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokStar:
		return "'*'"
	case tokOp:
		return "operator"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // identifier/keyword text, operator, or decoded string literal
	pos  int
}

// lexer scans an input SQL string into tokens.
type lexer struct {
	src string
	pos int
}

// lex tokenizes src, returning the token stream or a lexical error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "<=", pos: start}, nil
		}
		if l.pos < len(l.src) && l.src[l.pos] == '>' {
			l.pos++
			return token{kind: tokOp, text: "<>", pos: start}, nil
		}
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		return token{kind: tokOp, text: ">", pos: start}, nil
	case c == '\'':
		return l.stringLit()
	case c >= '0' && c <= '9' || c == '.' || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.number()
	case isIdentStart(c):
		return l.ident()
	default:
		return token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, start)
	}
}

// stringLit scans a single-quoted SQL string; ” escapes a quote.
func (l *lexer) stringLit() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
}

func (l *lexer) number() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if text == "-" || text == "." || text == "-." {
		return token{}, fmt.Errorf("sqlparse: malformed number at offset %d", start)
	}
	return token{kind: tokNumber, text: text, pos: start}, nil
}

func (l *lexer) ident() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '-' || isDigit(c) || unicode.IsLetter(rune(c))
}
