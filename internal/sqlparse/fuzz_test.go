package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary bytes: Parse must
// never panic, and everything it accepts must round-trip through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM ListProperty",
		"SELECT * FROM T WHERE a IN ('x','y') AND p BETWEEN 1 AND 2",
		"SELECT a, b FROM T WHERE p >= 100 AND p < 200",
		"select * from t where n = 'O''Brien'",
		"SELECT * FROM T WHERE p IN (1, 2, 3)",
		"SELECT * FROM T WHERE p <> 5",
		"SELECT * FROM T WHERE p BETWEEN -5 AND 5;",
		"SELECT * FROM T WHERE x = 'unterminated",
		"SELECT * FROM T WHERE \x00 = 1",
		strings.Repeat("SELECT ", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := q.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendered form %q does not parse: %v", src, rendered, err)
		}
		if back.String() != rendered {
			t.Fatalf("String not a fixpoint: %q -> %q", rendered, back.String())
		}
	})
}

// FuzzConditionOverlap checks the interval overlap helper for panics and
// symmetry-adjacent sanity on arbitrary numeric inputs.
func FuzzConditionOverlap(f *testing.F) {
	f.Add(0.0, 10.0, 5.0, 15.0)
	f.Add(-1.0, 1.0, 1.0, 2.0)
	f.Fuzz(func(t *testing.T, cLo, cHi, lo, hi float64) {
		if cHi < cLo {
			cLo, cHi = cHi, cLo
		}
		c := &Condition{Attr: "p", IsRange: true, Lo: cLo, LoSet: true, Hi: cHi, HiSet: true}
		got := c.OverlapsInterval(lo, hi)
		if hi <= lo && got {
			t.Fatalf("empty bucket [%v,%v) cannot overlap", lo, hi)
		}
	})
}
