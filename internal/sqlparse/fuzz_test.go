package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary bytes: Parse must
// never panic, and everything it accepts must round-trip through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM ListProperty",
		"SELECT * FROM T WHERE a IN ('x','y') AND p BETWEEN 1 AND 2",
		"SELECT a, b FROM T WHERE p >= 100 AND p < 200",
		"select * from t where n = 'O''Brien'",
		"SELECT * FROM T WHERE p IN (1, 2, 3)",
		"SELECT * FROM T WHERE p <> 5",
		"SELECT * FROM T WHERE p BETWEEN -5 AND 5;",
		"SELECT * FROM T WHERE x = 'unterminated",
		"SELECT * FROM T WHERE \x00 = 1",
		strings.Repeat("SELECT ", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := q.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendered form %q does not parse: %v", src, rendered, err)
		}
		if back.String() != rendered {
			t.Fatalf("String not a fixpoint: %q -> %q", rendered, back.String())
		}
	})
}

// FuzzSignature checks signature stability on everything the parser
// accepts: re-parsing the rendered SQL must preserve the signature, and
// reversing the parsed conjuncts and IN lists must not change it.
func FuzzSignature(f *testing.F) {
	seeds := []string{
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA','Bellevue, WA') AND price BETWEEN 200000 AND 300000",
		"SELECT a, b FROM T WHERE p >= 100 AND p < 200 AND q = 'x'",
		"select * from t where A in ('b','a') and a in ('a')",
		"SELECT * FROM T WHERE p = 5",
		"SELECT * FROM T WHERE p > -0.0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		sig := q.Signature()
		back, err := Parse(q.String())
		if err != nil {
			return // round-trip parsability is FuzzParse's property
		}
		if got := back.Signature(); got != sig {
			t.Fatalf("signature unstable across String round-trip: %q -> %q (src %q)", sig, got, src)
		}
		perm := q.Clone()
		for i, j := 0, len(perm.Conds)-1; i < j; i, j = i+1, j-1 {
			perm.Conds[i], perm.Conds[j] = perm.Conds[j], perm.Conds[i]
		}
		for _, c := range perm.Conds {
			for i, j := 0, len(c.Values)-1; i < j; i, j = i+1, j-1 {
				c.Values[i], c.Values[j] = c.Values[j], c.Values[i]
			}
		}
		if got := perm.Signature(); got != sig {
			t.Fatalf("signature order-sensitive: %q -> %q (src %q)", sig, got, src)
		}
	})
}

// FuzzConditionOverlap checks the interval overlap helper for panics and
// symmetry-adjacent sanity on arbitrary numeric inputs.
func FuzzConditionOverlap(f *testing.F) {
	f.Add(0.0, 10.0, 5.0, 15.0)
	f.Add(-1.0, 1.0, 1.0, 2.0)
	f.Fuzz(func(t *testing.T, cLo, cHi, lo, hi float64) {
		if cHi < cLo {
			cLo, cHi = cHi, cLo
		}
		c := &Condition{Attr: "p", IsRange: true, Lo: cLo, LoSet: true, Hi: cHi, HiSet: true}
		got := c.OverlapsInterval(lo, hi)
		if hi <= lo && got {
			t.Fatalf("empty bucket [%v,%v) cannot overlap", lo, hi)
		}
	})
}
