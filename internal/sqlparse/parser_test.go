package sqlparse

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestParseSelectStar(t *testing.T) {
	q, err := Parse("SELECT * FROM ListProperty")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Table != "ListProperty" || q.Columns != nil || len(q.Conds) != 0 {
		t.Fatalf("got %+v", q)
	}
}

func TestParseColumns(t *testing.T) {
	q := MustParse("SELECT price, neighborhood FROM ListProperty")
	want := []string{"price", "neighborhood"}
	if !reflect.DeepEqual(q.Columns, want) {
		t.Fatalf("Columns = %v; want %v", q.Columns, want)
	}
}

func TestParseInList(t *testing.T) {
	q := MustParse("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA', 'Redmond, WA')")
	c := q.Cond("neighborhood")
	if c == nil || c.IsRange {
		t.Fatalf("want categorical condition, got %+v", c)
	}
	if !reflect.DeepEqual(c.Values, []string{"Bellevue, WA", "Redmond, WA"}) {
		t.Fatalf("Values = %v", c.Values)
	}
}

func TestParseInListDeduplicates(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE n IN ('a','b','a')")
	if got := q.Cond("n").Values; !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Values = %v; want deduplicated [a b]", got)
	}
}

func TestParseBetween(t *testing.T) {
	q := MustParse("SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000")
	c := q.Cond("price")
	if c == nil || !c.IsRange || !c.LoSet || !c.HiSet || c.Lo != 200000 || c.Hi != 300000 {
		t.Fatalf("got %+v", c)
	}
	if c.LoStrict || c.HiStrict {
		t.Fatal("BETWEEN bounds must be inclusive")
	}
}

func TestParseBetweenSwapsReversedBounds(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE p BETWEEN 30 AND 10")
	c := q.Cond("p")
	if c.Lo != 10 || c.Hi != 30 {
		t.Fatalf("got [%v,%v]; want [10,30]", c.Lo, c.Hi)
	}
}

func TestParseComparisons(t *testing.T) {
	tests := []struct {
		src                string
		lo, hi             float64
		loSet, hiSet       bool
		loStrict, hiStrict bool
	}{
		{"SELECT * FROM T WHERE p < 100", 0, 100, false, true, false, true},
		{"SELECT * FROM T WHERE p <= 100", 0, 100, false, true, false, false},
		{"SELECT * FROM T WHERE p > 100", 100, 0, true, false, true, false},
		{"SELECT * FROM T WHERE p >= 100", 100, 0, true, false, false, false},
		{"SELECT * FROM T WHERE p = 100", 100, 100, true, true, false, false},
	}
	for _, tc := range tests {
		t.Run(tc.src, func(t *testing.T) {
			c := MustParse(tc.src).Cond("p")
			if c.LoSet != tc.loSet || c.HiSet != tc.hiSet ||
				(c.LoSet && (c.Lo != tc.lo || c.LoStrict != tc.loStrict)) ||
				(c.HiSet && (c.Hi != tc.hi || c.HiStrict != tc.hiStrict)) {
				t.Fatalf("got %+v", c)
			}
		})
	}
}

func TestParseStringEquality(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE propertytype = 'Condo'")
	c := q.Cond("propertytype")
	if c == nil || c.IsRange || !reflect.DeepEqual(c.Values, []string{"Condo"}) {
		t.Fatalf("got %+v", c)
	}
}

func TestParseEscapedQuote(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE n = 'O''Brien'")
	if got := q.Cond("n").Values[0]; got != "O'Brien" {
		t.Fatalf("got %q", got)
	}
}

func TestParseNumericInFoldsToRange(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE bedrooms IN (4, 2, 3)")
	c := q.Cond("bedrooms")
	if !c.IsRange || c.Lo != 2 || c.Hi != 4 {
		t.Fatalf("got %+v; want range [2,4]", c)
	}
}

func TestParseMergesRangeConditions(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE p >= 100 AND p <= 300 AND p >= 150")
	if len(q.Conds) != 1 {
		t.Fatalf("conditions not merged: %d", len(q.Conds))
	}
	c := q.Cond("p")
	if c.Lo != 150 || c.Hi != 300 {
		t.Fatalf("merged to [%v,%v]; want [150,300]", c.Lo, c.Hi)
	}
}

func TestParseMergesInConditions(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE n IN ('a','b','c') AND n IN ('b','c','d')")
	c := q.Cond("n")
	if !reflect.DeepEqual(c.Values, []string{"b", "c"}) {
		t.Fatalf("merged Values = %v; want [b c]", c.Values)
	}
}

func TestParseConflictingKinds(t *testing.T) {
	if _, err := Parse("SELECT * FROM T WHERE a = 'x' AND a = 5"); err == nil {
		t.Fatal("expected conflict error for mixed kinds on one attribute")
	}
}

func TestParseTrailingSemicolonAndCase(t *testing.T) {
	q, err := Parse("select * from T where P between 1 and 2;")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Cond("p") == nil {
		t.Fatal("case-insensitive attr lookup failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE T SET x = 1",
		"SELECT FROM T",
		"SELECT * T",
		"SELECT * FROM",
		"SELECT * FROM T WHERE",
		"SELECT * FROM T WHERE p",
		"SELECT * FROM T WHERE p !! 5",
		"SELECT * FROM T WHERE p IN ()",
		"SELECT * FROM T WHERE p IN ('a'",
		"SELECT * FROM T WHERE p BETWEEN 1",
		"SELECT * FROM T WHERE p BETWEEN 1 AND",
		"SELECT * FROM T WHERE n = 'unterminated",
		"SELECT * FROM T WHERE p < 'str'",
		"SELECT * FROM T extra",
		"SELECT * FROM T WHERE p IN (1, 'a')",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded; want error", src)
		}
	}
}

func TestQueryString(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"select * from T", "SELECT * FROM T"},
		{"select a, b from T", "SELECT a, b FROM T"},
		{
			"select * from T where n IN ('a','b') and p between 1 and 2",
			"SELECT * FROM T WHERE n IN ('a', 'b') AND p BETWEEN 1 AND 2",
		},
		{"select * from T where n = 'a'", "SELECT * FROM T WHERE n = 'a'"},
		{"select * from T where p >= 5", "SELECT * FROM T WHERE p >= 5"},
		{"select * from T where p < 5", "SELECT * FROM T WHERE p < 5"},
		{"select * from T where p = 5", "SELECT * FROM T WHERE p = 5"},
		{"select * from T where p > 1 and p < 9", "SELECT * FROM T WHERE p > 1 AND p < 9"},
	}
	for _, tc := range tests {
		if got := MustParse(tc.src).String(); got != tc.want {
			t.Errorf("String(%q) = %q; want %q", tc.src, got, tc.want)
		}
	}
}

func TestQueryPredicate(t *testing.T) {
	schema := relation.MustSchema(
		relation.Attribute{Name: "n", Type: relation.Categorical},
		relation.Attribute{Name: "p", Type: relation.Numeric},
	)
	q := MustParse("SELECT * FROM T WHERE n IN ('a') AND p BETWEEN 10 AND 20")
	pred := q.Predicate()
	match := relation.Tuple{relation.StringValue("a"), relation.NumberValue(20)}
	miss := relation.Tuple{relation.StringValue("a"), relation.NumberValue(21)}
	if !pred.Matches(schema, match) {
		t.Error("predicate should match tuple inside closed range")
	}
	if pred.Matches(schema, miss) {
		t.Error("predicate should not match tuple above range")
	}
}

func TestStrictBoundPredicate(t *testing.T) {
	schema := relation.MustSchema(relation.Attribute{Name: "p", Type: relation.Numeric})
	q := MustParse("SELECT * FROM T WHERE p > 10 AND p < 20")
	pred := q.Predicate()
	cases := []struct {
		v    float64
		want bool
	}{{10, false}, {10.5, true}, {19.999, true}, {20, false}}
	for _, tc := range cases {
		got := pred.Matches(schema, relation.Tuple{relation.NumberValue(tc.v)})
		if got != tc.want {
			t.Errorf("p=%v: match=%v; want %v", tc.v, got, tc.want)
		}
	}
}

func TestConditionOverlapsInterval(t *testing.T) {
	c := MustParse("SELECT * FROM T WHERE p BETWEEN 100 AND 200").Cond("p")
	tests := []struct {
		lo, hi float64
		want   bool
	}{
		{0, 50, false},
		{0, 100, false}, // bucket [0,100) excludes 100
		{0, 101, true},  // includes 100
		{150, 160, true},
		{200, 300, true}, // closed condition includes 200
		{201, 300, false},
	}
	for _, tc := range tests {
		if got := c.OverlapsInterval(tc.lo, tc.hi); got != tc.want {
			t.Errorf("OverlapsInterval(%v,%v) = %v; want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestConditionOverlapsIntervalStrict(t *testing.T) {
	c := MustParse("SELECT * FROM T WHERE p > 100 AND p < 200").Cond("p")
	if c.OverlapsInterval(200, 300) {
		t.Error("strict upper bound 200 should not overlap bucket [200,300)")
	}
	if !c.OverlapsInterval(150, 180) {
		t.Error("interior bucket should overlap")
	}
}

func TestConditionOverlapsValues(t *testing.T) {
	c := MustParse("SELECT * FROM T WHERE n IN ('a','b')").Cond("n")
	if !c.OverlapsValues(map[string]struct{}{"b": {}}) {
		t.Error("should overlap on shared member")
	}
	if c.OverlapsValues(map[string]struct{}{"z": {}}) {
		t.Error("should not overlap on disjoint set")
	}
}

func TestQueryCloneIsDeep(t *testing.T) {
	q := MustParse("SELECT a FROM T WHERE n IN ('x','y') AND p >= 5")
	c := q.Clone()
	c.Conds[0].Values[0] = "mutated"
	c.Columns[0] = "mutated"
	if q.Conds[0].Values[0] != "x" || q.Columns[0] != "a" {
		t.Fatal("Clone shares backing storage with original")
	}
}

func TestRemoveAndSetCond(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE n IN ('x') AND p >= 5")
	if !q.RemoveCond("P") {
		t.Fatal("RemoveCond(P) should succeed case-insensitively")
	}
	if q.RemoveCond("p") {
		t.Fatal("second RemoveCond(p) should fail")
	}
	q.SetCond(&Condition{Attr: "n", Values: []string{"z"}})
	if got := q.Cond("n").Values; !reflect.DeepEqual(got, []string{"z"}) {
		t.Fatalf("SetCond did not replace: %v", got)
	}
	q.SetCond(&Condition{Attr: "q", IsRange: true, Lo: 1, LoSet: true})
	if q.Cond("q") == nil {
		t.Fatal("SetCond did not append new condition")
	}
}

func TestCondInterval(t *testing.T) {
	c := MustParse("SELECT * FROM T WHERE p <= 9").Cond("p")
	lo, hi := c.Interval()
	if !math.IsInf(lo, -1) || hi != 9 {
		t.Fatalf("Interval = %v,%v", lo, hi)
	}
}

// randomQuery builds a structurally valid random query for the round-trip
// property test.
func randomQuery(r *rand.Rand) *Query {
	attrs := []string{"neighborhood", "price", "bedrooms", "sqft", "yearbuilt", "ptype"}
	q := &Query{Table: "ListProperty"}
	if r.Intn(3) == 0 {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			q.Columns = append(q.Columns, attrs[r.Intn(len(attrs))]+"_c")
		}
	}
	perm := r.Perm(len(attrs))
	nCond := r.Intn(4)
	vals := []string{"Seattle, WA", "Bellevue, WA", "O'Brien Town", "Redmond, WA", "Kirkland, WA"}
	for i := 0; i < nCond; i++ {
		attr := attrs[perm[i]]
		if r.Intn(2) == 0 {
			k := 1 + r.Intn(3)
			seen := map[string]struct{}{}
			c := &Condition{Attr: attr}
			for j := 0; j < k; j++ {
				v := vals[r.Intn(len(vals))]
				if _, dup := seen[v]; !dup {
					seen[v] = struct{}{}
					c.Values = append(c.Values, v)
				}
			}
			q.Conds = append(q.Conds, c)
		} else {
			c := &Condition{Attr: attr, IsRange: true}
			lo := float64(r.Intn(1000)) * 100
			hi := lo + float64(1+r.Intn(1000))*100
			switch r.Intn(4) {
			case 0:
				c.Lo, c.LoSet, c.Hi, c.HiSet = lo, true, hi, true
			case 1:
				c.Lo, c.LoSet, c.LoStrict = lo, true, r.Intn(2) == 0
			case 2:
				c.Hi, c.HiSet, c.HiStrict = hi, true, r.Intn(2) == 0
			case 3:
				c.Lo, c.LoSet, c.Hi, c.HiSet = lo, true, lo, true // equality
			}
			q.Conds = append(q.Conds, c)
		}
	}
	return q
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomQuery(r))
		},
	}
	prop := func(q *Query) bool {
		parsed, err := Parse(q.String())
		if err != nil {
			t.Logf("round-trip parse failed for %q: %v", q.String(), err)
			return false
		}
		if !reflect.DeepEqual(parsed, q) {
			t.Logf("round-trip mismatch:\n  orig   %#v\n  parsed %#v\n  sql    %s", q, parsed, q.String())
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrorMentionsInput(t *testing.T) {
	_, err := Parse("SELECT * FROM T WHERE p IN ()")
	if err == nil || !strings.Contains(err.Error(), "SELECT * FROM T") {
		t.Fatalf("error should embed the offending query, got %v", err)
	}
}
