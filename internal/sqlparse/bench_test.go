package sqlparse

import "testing"

// BenchmarkParse measures parsing a representative workload query.
func BenchmarkParse(b *testing.B) {
	src := "SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA','Redmond, WA','Kirkland, WA') " +
		"AND price BETWEEN 200000 AND 300000 AND bedroomcount >= 3 AND propertytype IN ('Condo')"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryString measures rendering back to SQL.
func BenchmarkQueryString(b *testing.B) {
	q := MustParse("SELECT * FROM T WHERE n IN ('a','b','c') AND p BETWEEN 1 AND 2 AND q >= 5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = q.String()
	}
}
