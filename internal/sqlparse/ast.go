package sqlparse

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Query is a parsed SPJ selection query: SELECT columns FROM table WHERE
// conjunction of per-attribute conditions. Conditions are normalized so each
// attribute appears at most once (multiple comparisons on one numeric
// attribute merge into a single interval; multiple IN lists intersect).
type Query struct {
	Table   string
	Columns []string // nil means '*'
	// Conds holds the normalized conditions in first-appearance order.
	Conds []*Condition
}

// Condition is a selection condition on a single attribute: either a
// categorical membership set (IsRange false) or a numeric interval
// (IsRange true). Interval bounds follow the paper's convention
// vmin ≤ A ≤ vmax; strict bounds from </> comparisons are preserved.
type Condition struct {
	Attr    string
	IsRange bool

	// Categorical membership, in first-appearance order, deduplicated.
	Values []string

	// Numeric interval.
	Lo, Hi             float64
	LoSet, HiSet       bool
	LoStrict, HiStrict bool
}

// Cond returns the condition on the named attribute (case-insensitive), or
// nil when the query has none.
func (q *Query) Cond(attr string) *Condition {
	for _, c := range q.Conds {
		if strings.EqualFold(c.Attr, attr) {
			return c
		}
	}
	return nil
}

// Attrs returns the attribute names that carry selection conditions, in
// first-appearance order.
func (q *Query) Attrs() []string {
	out := make([]string, len(q.Conds))
	for i, c := range q.Conds {
		out[i] = c.Attr
	}
	return out
}

// Predicate converts the query's WHERE clause into an executable predicate
// over a relation. An empty WHERE clause yields a predicate matching all
// tuples.
func (q *Query) Predicate() relation.Predicate {
	preds := make([]relation.Predicate, 0, len(q.Conds))
	for _, c := range q.Conds {
		preds = append(preds, c.Predicate())
	}
	return relation.NewAnd(preds...)
}

// String renders the query back to SQL in the dialect this package parses;
// Parse(q.String()) reproduces q (see the round-trip property test).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Columns) == 0 {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(q.Columns, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(q.Table)
	if len(q.Conds) > 0 {
		b.WriteString(" WHERE ")
		parts := make([]string, len(q.Conds))
		for i, c := range q.Conds {
			parts[i] = c.String()
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	return b.String()
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	out := &Query{Table: q.Table}
	if q.Columns != nil {
		out.Columns = append([]string(nil), q.Columns...)
	}
	for _, c := range q.Conds {
		cc := *c
		cc.Values = append([]string(nil), c.Values...)
		out.Conds = append(out.Conds, &cc)
	}
	return out
}

// RemoveCond deletes the condition on the named attribute, if present, and
// reports whether one was removed.
func (q *Query) RemoveCond(attr string) bool {
	for i, c := range q.Conds {
		if strings.EqualFold(c.Attr, attr) {
			q.Conds = append(q.Conds[:i], q.Conds[i+1:]...)
			return true
		}
	}
	return false
}

// SetCond replaces (or appends) the condition on cond.Attr.
func (q *Query) SetCond(cond *Condition) {
	for i, c := range q.Conds {
		if strings.EqualFold(c.Attr, cond.Attr) {
			q.Conds[i] = cond
			return
		}
	}
	q.Conds = append(q.Conds, cond)
}

// Predicate converts the condition into an executable relation predicate.
func (c *Condition) Predicate() relation.Predicate {
	if !c.IsRange {
		return relation.NewIn(c.Attr, c.Values...)
	}
	lo, hi := math.Inf(-1), math.Inf(1)
	if c.LoSet {
		lo = c.Lo
	}
	if c.HiSet {
		hi = c.Hi
	}
	r := &relation.Range{Attr: c.Attr, Lo: lo, Hi: hi, HiInc: c.HiSet && !c.HiStrict}
	if c.LoSet && c.LoStrict {
		// relation.Range has an inclusive lower bound; nudge by the smallest
		// representable step to approximate strictness. Workload semantics
		// only need overlap tests, for which this is exact on our integer
		// domains.
		r.Lo = math.Nextafter(c.Lo, math.Inf(1))
	}
	return r
}

// Interval returns the condition's numeric interval as [lo, hi] with ±Inf
// for absent bounds. It is only meaningful when IsRange is true.
func (c *Condition) Interval() (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	if c.LoSet {
		lo = c.Lo
	}
	if c.HiSet {
		hi = c.Hi
	}
	return lo, hi
}

// OverlapsValues reports whether the categorical condition shares at least
// one member with set. Only meaningful when IsRange is false.
func (c *Condition) OverlapsValues(set map[string]struct{}) bool {
	for _, v := range c.Values {
		if _, ok := set[v]; ok {
			return true
		}
	}
	return false
}

// OverlapsInterval reports whether the numeric condition's interval
// intersects the half-open label bucket [lo, hi), per the paper's overlap
// definition for numeric attributes. An empty bucket (hi ≤ lo) overlaps
// nothing.
func (c *Condition) OverlapsInterval(lo, hi float64) bool {
	if hi <= lo {
		return false
	}
	clo, chi := c.Interval()
	if c.LoStrict {
		clo = math.Nextafter(clo, math.Inf(1))
	}
	if c.HiStrict {
		chi = math.Nextafter(chi, math.Inf(-1))
	}
	// [clo, chi] ∩ [lo, hi) ≠ ∅
	return clo < hi && chi >= lo
}

// SortedValues returns the membership set sorted lexicographically.
func (c *Condition) SortedValues() []string {
	out := append([]string(nil), c.Values...)
	sort.Strings(out)
	return out
}

// String renders the condition in parseable SQL.
func (c *Condition) String() string {
	if !c.IsRange {
		quoted := make([]string, len(c.Values))
		for i, v := range c.Values {
			quoted[i] = "'" + strings.ReplaceAll(v, "'", "''") + "'"
		}
		if len(quoted) == 1 {
			return fmt.Sprintf("%s = %s", c.Attr, quoted[0])
		}
		return fmt.Sprintf("%s IN (%s)", c.Attr, strings.Join(quoted, ", "))
	}
	var parts []string
	if c.LoSet && c.HiSet && !c.LoStrict && !c.HiStrict {
		if c.Lo == c.Hi {
			return fmt.Sprintf("%s = %s", c.Attr, fmtNum(c.Lo))
		}
		return fmt.Sprintf("%s BETWEEN %s AND %s", c.Attr, fmtNum(c.Lo), fmtNum(c.Hi))
	}
	if c.LoSet {
		op := ">="
		if c.LoStrict {
			op = ">"
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", c.Attr, op, fmtNum(c.Lo)))
	}
	if c.HiSet {
		op := "<="
		if c.HiStrict {
			op = "<"
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", c.Attr, op, fmtNum(c.Hi)))
	}
	return strings.Join(parts, " AND ")
}

// Merge folds another condition on the same attribute into c (conjunction
// semantics): IN sets intersect; intervals intersect. It errors when the
// conditions are of different kinds.
func (c *Condition) Merge(other *Condition) error { return c.merge(other) }

// merge folds another condition on the same attribute into c (conjunction
// semantics): IN sets intersect; intervals intersect.
func (c *Condition) merge(other *Condition) error {
	if c.IsRange != other.IsRange {
		return fmt.Errorf("sqlparse: conflicting condition kinds on attribute %q", c.Attr)
	}
	if !c.IsRange {
		keep := make(map[string]struct{}, len(other.Values))
		for _, v := range other.Values {
			keep[v] = struct{}{}
		}
		out := c.Values[:0]
		for _, v := range c.Values {
			if _, ok := keep[v]; ok {
				out = append(out, v)
			}
		}
		c.Values = out
		return nil
	}
	if other.LoSet && (!c.LoSet || other.Lo > c.Lo || (other.Lo == c.Lo && other.LoStrict)) {
		c.Lo, c.LoSet, c.LoStrict = other.Lo, true, other.LoStrict
	}
	if other.HiSet && (!c.HiSet || other.Hi < c.Hi || (other.Hi == c.Hi && other.HiStrict)) {
		c.Hi, c.HiSet, c.HiStrict = other.Hi, true, other.HiStrict
	}
	return nil
}

func fmtNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
