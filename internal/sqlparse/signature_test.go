package sqlparse

import (
	"testing"
)

// mustSig parses and signs, failing the test on parse errors.
func mustSig(t *testing.T, sql string) string {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q.Signature()
}

func TestSignatureEquivalentSpellings(t *testing.T) {
	groups := [][]string{
		{ // attribute/table case, IN order, conjunct order, whitespace
			"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA','Bellevue, WA') AND price BETWEEN 200000 AND 300000",
			"select * from listproperty where PRICE between 200000 and 300000 and NeighborHood in ('Bellevue, WA', 'Seattle, WA')",
			"SELECT   *   FROM  LISTPROPERTY  WHERE neighborhood IN ('Bellevue, WA','Seattle, WA','Seattle, WA') AND price >= 200000 AND price <= 300000",
		},
		{ // BETWEEN vs split comparisons
			"SELECT * FROM T WHERE p BETWEEN 1 AND 2",
			"SELECT * FROM T WHERE p >= 1 AND p <= 2",
			"SELECT * FROM T WHERE p <= 2 AND p >= 1",
		},
		{ // equality vs degenerate interval
			"SELECT * FROM T WHERE p = 5",
			"SELECT * FROM T WHERE p BETWEEN 5 AND 5",
		},
		{ // numeric formatting: 5 vs 5.0
			"SELECT * FROM T WHERE p >= 5",
			"SELECT * FROM T WHERE p >= 5.0",
		},
		{ // column list order and case ('*' handled by the first group)
			"SELECT a, B FROM T WHERE p > 0",
			"SELECT b, A, a FROM T WHERE p > 0",
		},
	}
	for gi, g := range groups {
		want := mustSig(t, g[0])
		for _, sql := range g[1:] {
			if got := mustSig(t, sql); got != want {
				t.Errorf("group %d: %q signed %q, want %q (from %q)", gi, sql, got, want, g[0])
			}
		}
	}
}

func TestSignatureDistinguishesSemantics(t *testing.T) {
	distinct := []string{
		"SELECT * FROM T",
		"SELECT a FROM T",
		"SELECT * FROM U",
		"SELECT * FROM T WHERE p > 5",
		"SELECT * FROM T WHERE p >= 5",
		"SELECT * FROM T WHERE p < 5",
		"SELECT * FROM T WHERE p <= 5",
		"SELECT * FROM T WHERE p = 5",
		"SELECT * FROM T WHERE p BETWEEN 5 AND 6",
		"SELECT * FROM T WHERE q = 5",
		"SELECT * FROM T WHERE a = 'x'",
		"SELECT * FROM T WHERE a IN ('x','y')",
		"SELECT * FROM T WHERE a = 'x' AND p = 5",
	}
	seen := map[string]string{}
	for _, sql := range distinct {
		sig := mustSig(t, sql)
		if prev, dup := seen[sig]; dup {
			t.Errorf("%q and %q share signature %q", prev, sql, sig)
		}
		seen[sig] = sql
	}
}

// TestSignatureValueAmbiguity guards the separator choice: values containing
// quotes, commas, or spaces must not collide with differently-split lists.
func TestSignatureValueAmbiguity(t *testing.T) {
	a := mustSig(t, "SELECT * FROM T WHERE a IN ('x,y')")
	b := mustSig(t, "SELECT * FROM T WHERE a IN ('x','y')")
	if a == b {
		t.Fatalf("value 'x,y' collides with list ('x','y'): %q", a)
	}
}

// TestSignatureStableUnderRoundTrip pins the core stability property on
// representative queries (the fuzz target explores it at large).
func TestSignatureStableUnderRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND price < 300000 AND bedcount >= 3",
		"SELECT * FROM T WHERE n = 'O''Brien'",
		"SELECT * FROM T WHERE p > -5 AND p < 5",
	} {
		q := MustParse(sql)
		back := MustParse(q.String())
		if q.Signature() != back.Signature() {
			t.Errorf("round-trip changed signature for %q:\n  %q\n  %q", sql, q.Signature(), back.Signature())
		}
	}
}

// TestSignaturePermutationInvariant reverses conjuncts and IN lists in the
// parsed form directly — a stronger guarantee than spelling tests, since it
// bypasses the parser's own normalizations.
func TestSignaturePermutationInvariant(t *testing.T) {
	q := MustParse("SELECT * FROM T WHERE a IN ('x','y','z') AND p BETWEEN 1 AND 9 AND b = 'w'")
	want := q.Signature()
	perm := q.Clone()
	for i, j := 0, len(perm.Conds)-1; i < j; i, j = i+1, j-1 {
		perm.Conds[i], perm.Conds[j] = perm.Conds[j], perm.Conds[i]
	}
	for _, c := range perm.Conds {
		for i, j := 0, len(c.Values)-1; i < j; i, j = i+1, j-1 {
			c.Values[i], c.Values[j] = c.Values[j], c.Values[i]
		}
	}
	if got := perm.Signature(); got != want {
		t.Fatalf("permuted query signed %q, want %q", got, want)
	}
}
