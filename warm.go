package repro

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// Predictive cache pre-warming (DESIGN.md §13): every published Learn bumps
// the statistics generation, which makes every cached tree stale at once. The
// warmer rides behind the learn stream and re-categorizes the most-requested
// workload signatures into the new generation before users ask again, so the
// foreground path finds warm entries (or at worst repairs stale ones) instead
// of paying cold builds in a thundering herd.
//
// Warming is strictly background work: each build takes an admission slot
// only via Limiter.TryAcquireIdle — a free slot with an empty queue — so a
// warmer can never queue ahead of, or shed, foreground traffic. Builds run
// under a wall budget without the degradation ladder: a degraded tree is
// uncacheable, so warming one would be pure waste.

// defaultWarmBudget bounds one warming build when WarmerConfig.Budget is
// unset.
const defaultWarmBudget = 2 * time.Second

// WarmerConfig tunes a Warmer.
type WarmerConfig struct {
	// TopK is how many of the most-requested signatures each cycle warms;
	// <= 0 disables warming (StartWarmer returns nil).
	TopK int
	// Budget is the wall budget for one warming build; default 2s. A build
	// that blows it is dropped (the foreground path will build or repair on
	// demand) — warming never uses the degradation ladder.
	Budget time.Duration
	// Epsilon is the relative statistics-drift threshold below which a cycle
	// is skipped entirely: DiffStats(lastWarmed, current, Epsilon).Same means
	// no table this warmer's trees read moved enough to matter. 0 skips only
	// bit-identical snapshots.
	Epsilon float64
	// Tech and Opts are the technique and categorizer options warmed trees
	// are built (and keyed) with; the zero Tech is CostBased.
	Tech Technique
	// Opts are the categorizer options for warmed builds — they must match
	// the foreground requests' options or the warmed keys will never hit.
	Opts Options
	// Limiter is the serving path's admission controller; warming takes
	// idle-only slots from it (never queueing). nil warms unthrottled.
	Limiter *resilience.Limiter
}

// WarmerStats is a point-in-time snapshot of warming activity (surfaced in
// /healthz).
type WarmerStats struct {
	// Cycles counts completed warm cycles; SkippedCycles the ones abandoned
	// because statistics drift since the last cycle was under Epsilon.
	Cycles        uint64 `json:"cycles"`
	SkippedCycles uint64 `json:"skippedCycles"`
	// Warmed counts trees built (or repaired) into the cache by warming;
	// AlreadyCached counts top-K signatures found warm already; Busy counts
	// signatures skipped because the limiter had no idle slot; Errors counts
	// failed warming builds (budget blown, build error).
	Warmed        uint64 `json:"warmed"`
	AlreadyCached uint64 `json:"alreadyCached"`
	Busy          uint64 `json:"busy"`
	Errors        uint64 `json:"errors"`
	// Panics counts warm cycles that panicked (contained at the cycle
	// boundary; the warmer keeps running).
	Panics uint64 `json:"panics"`
	// Tracked is how many distinct signatures the warmer has observed; TopK
	// echoes the configuration.
	Tracked int `json:"tracked"`
	TopK    int `json:"topK"`
}

// Warmer is the background pre-warming worker of an AdaptiveSystem. Create
// with StartWarmer, stop with StopWarmer; all methods are safe for concurrent
// use.
type Warmer struct {
	a   *AdaptiveSystem
	cfg WarmerConfig

	mu     sync.Mutex
	counts map[string]*warmSig
	seq    uint64
	last   *workload.Stats // snapshot the previous cycle warmed against

	notify chan struct{} // coalescing learn signal (capacity 1)
	quit   chan struct{}
	done   chan struct{}

	cycles  atomic.Uint64
	skipped atomic.Uint64
	warmed  atomic.Uint64
	hits    atomic.Uint64
	busy    atomic.Uint64
	errs    atomic.Uint64
	panics  atomic.Uint64
}

// warmSig is one observed workload signature: the first-seen parsed query
// (queries are immutable after parse), its request count, and its arrival
// rank for deterministic tie-breaking.
type warmSig struct {
	q     *sqlparse.Query
	count uint64
	seq   uint64
}

// StartWarmer starts background pre-warming on the learn stream. It returns
// nil without starting anything when cfg.TopK <= 0 or a warmer is already
// running. The caller owns the lifecycle: StopWarmer stops the worker and
// waits for it.
func (a *AdaptiveSystem) StartWarmer(cfg WarmerConfig) *Warmer {
	if cfg.TopK <= 0 {
		return nil
	}
	if cfg.Budget <= 0 {
		cfg.Budget = defaultWarmBudget
	}
	w := &Warmer{
		a:      a,
		cfg:    cfg,
		counts: make(map[string]*warmSig),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if !a.warm.CompareAndSwap(nil, w) {
		return nil
	}
	go func() {
		defer close(w.done)
		w.protectedWarmLoop()
	}()
	return w
}

// StopWarmer stops the running warmer (if any) and waits for its goroutine
// to exit. Idempotent.
func (a *AdaptiveSystem) StopWarmer() {
	if w := a.warm.Swap(nil); w != nil {
		close(w.quit)
		<-w.done
	}
}

// WarmerStats snapshots the running warmer's counters; ok is false when no
// warmer is running.
func (a *AdaptiveSystem) WarmerStats() (stats WarmerStats, ok bool) {
	w := a.warm.Load()
	if w == nil {
		return WarmerStats{}, false
	}
	return w.snapshot(), true
}

func (w *Warmer) snapshot() WarmerStats {
	w.mu.Lock()
	tracked := len(w.counts)
	w.mu.Unlock()
	return WarmerStats{
		Cycles:        w.cycles.Load(),
		SkippedCycles: w.skipped.Load(),
		Warmed:        w.warmed.Load(),
		AlreadyCached: w.hits.Load(),
		Busy:          w.busy.Load(),
		Errors:        w.errs.Load(),
		Panics:        w.panics.Load(),
		Tracked:       tracked,
		TopK:          w.cfg.TopK,
	}
}

// observe records learned queries' signatures and pokes the worker. Called
// from the learn path after the new snapshot is published; the send is
// non-blocking (the channel coalesces bursts into one wake-up).
func (w *Warmer) observe(qs []*sqlparse.Query) {
	w.mu.Lock()
	for _, q := range qs {
		sig := q.Signature()
		e := w.counts[sig]
		if e == nil {
			w.seq++
			e = &warmSig{q: q, seq: w.seq}
			w.counts[sig] = e
		}
		e.count++
	}
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// protectedWarmLoop drains learn notifications until stopped, running each
// cycle behind a panic boundary so a categorizer bug during warming cannot
// take the process (or the loop) down.
func (w *Warmer) protectedWarmLoop() {
	for {
		select {
		case <-w.quit:
			return
		case <-w.notify:
		}
		w.protectedWarmCycle()
	}
}

func (w *Warmer) protectedWarmCycle() {
	resilience.Protect(
		func(*resilience.PanicError) { w.panics.Add(1) },
		func() (struct{}, error) {
			w.warmCycle()
			return struct{}{}, nil
		},
	)
}

// warmCycle warms the current top-K signatures against the current snapshot.
// One cycle may cover several coalesced learns; a cycle whose statistics
// drift since the last one is within Epsilon is a no-op.
func (w *Warmer) warmCycle() {
	sys := w.a.System()
	w.mu.Lock()
	if w.last != nil && workload.DiffStats(w.last, sys.stats, w.cfg.Epsilon).Same {
		w.mu.Unlock()
		w.skipped.Add(1)
		return
	}
	w.last = sys.stats
	top := make([]warmSig, 0, len(w.counts))
	for _, e := range w.counts {
		top = append(top, *e)
	}
	w.mu.Unlock()

	sort.Slice(top, func(i, j int) bool {
		if top[i].count != top[j].count {
			return top[i].count > top[j].count
		}
		return top[i].seq < top[j].seq
	})
	if len(top) > w.cfg.TopK {
		top = top[:w.cfg.TopK]
	}
	for _, e := range top {
		select {
		case <-w.quit:
			return
		default:
		}
		if _, ok := sys.Peek(e.q, w.cfg.Tech, w.cfg.Opts); ok {
			w.hits.Add(1)
			continue
		}
		release, ok := w.cfg.Limiter.TryAcquireIdle()
		if !ok {
			// Foreground traffic owns the limiter right now; skip rather than
			// queue. The signature stays tracked for the next cycle.
			w.busy.Add(1)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), w.cfg.Budget)
		// No degradation ladder: a degraded tree is never stored, so warming
		// one would burn a slot for nothing. Miss the budget → drop the build.
		_, err := sys.ServeParsedWith(ctx, e.q, w.cfg.Tech, w.cfg.Opts, ServePolicy{})
		cancel()
		release()
		if err != nil {
			w.errs.Add(1)
		} else {
			w.warmed.Add(1)
		}
	}
	w.cycles.Add(1)
}
