package repro_test

// bench_test.go regenerates every table and figure of the paper's evaluation
// (§6) as Go benchmarks. Each benchmark prints the rows/series the paper
// reports (via b.Logf) and exposes the headline quantity as a custom metric,
// so `go test -bench=. -benchmem` reproduces the study end to end.
// cmd/benchrunner prints the same data as formatted tables at larger scale.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/category"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/session"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Shared, lazily built experiment artifacts. The environment and the two
// studies are deterministic, so all benchmarks can reuse one instance.
var (
	envOnce  sync.Once
	envErr   error
	benchEnv *experiments.Env

	synOnce sync.Once
	synErr  error
	synRes  *experiments.SyntheticResult

	studyOnce sync.Once
	studyErr  error
	studyRes  *experiments.StudyResult
)

func mustEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() { benchEnv, envErr = experiments.DefaultEnv() })
	if envErr != nil {
		b.Fatalf("environment: %v", envErr)
	}
	return benchEnv
}

func cachedSynthetic(b *testing.B) *experiments.SyntheticResult {
	b.Helper()
	env := mustEnv(b)
	synOnce.Do(func() { synRes, synErr = experiments.SyntheticStudy(env) })
	if synErr != nil {
		b.Fatalf("synthetic study: %v", synErr)
	}
	return synRes
}

func cachedStudy(b *testing.B) *experiments.StudyResult {
	b.Helper()
	env := mustEnv(b)
	studyOnce.Do(func() { studyRes, studyErr = experiments.RealLifeStudy(env) })
	if studyErr != nil {
		b.Fatalf("real-life study: %v", studyErr)
	}
	return studyRes
}

// BenchmarkFig7EstimatedVsActual regenerates Figure 7: the estimated-vs-
// actual cost scatter over all synthetic explorations with its zero-
// intercept trend line (the paper reports y = 1.1002x).
func BenchmarkFig7EstimatedVsActual(b *testing.B) {
	res := cachedSynthetic(b)
	est, act := res.EstActPairs()
	var slope, r float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slope, _ = stats.FitThroughOrigin(est, act)
		r, _ = stats.Correlate(est, act)
	}
	b.ReportMetric(slope, "slope")
	b.ReportMetric(r, "pearson-r")
	b.Logf("Figure 7: %d synthetic explorations, trend y = %.4fx, r = %.3f", len(est), slope, r)
}

// BenchmarkTable1SubsetCorrelation regenerates Table 1: Pearson correlation
// between estimated and actual cost per cross-validation subset and overall.
func BenchmarkTable1SubsetCorrelation(b *testing.B) {
	res := cachedSynthetic(b)
	var overall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, act := res.EstActPairs()
		overall, _ = stats.Correlate(est, act)
	}
	b.ReportMetric(overall, "pearson-r-all")
	for _, s := range res.Subsets {
		b.Logf("Table 1: subset %d  r = %.2f  (n=%d)", s.Index+1, s.PearsonR, s.N)
	}
	b.Logf("Table 1: All  r = %.2f", overall)
}

// BenchmarkFig8FractionExamined regenerates Figure 8: fraction of the result
// set examined per subset for each technique (the paper: cost-based is a
// factor 3-8 below the others).
func BenchmarkFig8FractionExamined(b *testing.B) {
	res := cachedSynthetic(b)
	var worstRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worstRatio = 0
		for _, s := range res.Subsets {
			ratio := s.FracCost[category.NoCost] / s.FracCost[category.CostBased]
			if worstRatio == 0 || ratio < worstRatio {
				worstRatio = ratio
			}
		}
	}
	b.ReportMetric(worstRatio, "min-nocost/cost-ratio")
	for _, s := range res.Subsets {
		b.Logf("Figure 8: subset %d  cost-based=%.3f  attr-cost=%.3f  no-cost=%.3f",
			s.Index+1, s.FracCost[category.CostBased], s.FracCost[category.AttrCost], s.FracCost[category.NoCost])
	}
}

// BenchmarkTable2UserCorrelation regenerates Table 2: per-subject
// correlation between estimated and actual cost in the real-life study.
func BenchmarkTable2UserCorrelation(b *testing.B) {
	res := cachedStudy(b)
	var avg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rs []float64
		for _, u := range res.PerUser {
			if u.OK {
				rs = append(rs, u.R)
			}
		}
		avg = stats.Mean(rs)
	}
	b.ReportMetric(avg, "avg-user-r")
	for _, u := range res.PerUser {
		if u.OK {
			b.Logf("Table 2: U%d  r = %.2f  (n=%d)", u.Subject+1, u.R, u.N)
		} else {
			b.Logf("Table 2: U%d  r undefined (n=%d)", u.Subject+1, u.N)
		}
	}
	b.Logf("Table 2: average r = %.2f", avg)
}

// BenchmarkTable3VsNoCategorization regenerates Table 3: cost-based
// normalized cost per task versus the result-set size (the no-categorization
// cost).
func BenchmarkTable3VsNoCategorization(b *testing.B) {
	res := cachedStudy(b)
	var rows []experiments.Table3Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(res)
	}
	for _, row := range rows {
		b.Logf("Table 3: task %d  cost-based = %.3f  no categorization = %d",
			row.Task, row.CostBasedNormCost, row.NoCategorization)
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].CostBasedNormCost, "task1-norm-cost")
	}
}

// logTaskTechnique prints one Figure 9-12 panel.
func logTaskTechnique(b *testing.B, name string, cells map[experiments.CellKey]float64) {
	for task := 0; task < 4; task++ {
		b.Logf("%s: task %d  cost-based=%.1f  attr-cost=%.1f  no-cost=%.1f", name, task+1,
			cells[experiments.CellKey{Task: task, Technique: category.CostBased}],
			cells[experiments.CellKey{Task: task, Technique: category.AttrCost}],
			cells[experiments.CellKey{Task: task, Technique: category.NoCost}])
	}
}

// BenchmarkFig9AllScenarioCost regenerates Figure 9: items examined until
// all relevant tuples were found, per task × technique.
func BenchmarkFig9AllScenarioCost(b *testing.B) {
	res := cachedStudy(b)
	var avg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, n := 0.0, 0
		for task := 0; task < 4; task++ {
			sum += res.CostAll[experiments.CellKey{Task: task, Technique: category.CostBased}]
			n++
		}
		avg = sum / float64(n)
	}
	b.ReportMetric(avg, "costbased-avg-items")
	logTaskTechnique(b, "Figure 9", res.CostAll)
}

// BenchmarkFig10RelevantFound regenerates Figure 10: relevant tuples found
// per task × technique (the paper: 3-5× more with cost-based than no-cost).
func BenchmarkFig10RelevantFound(b *testing.B) {
	res := cachedStudy(b)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb, nc := 0.0, 0.0
		for task := 0; task < 4; task++ {
			cb += res.Relevant[experiments.CellKey{Task: task, Technique: category.CostBased}]
			nc += res.Relevant[experiments.CellKey{Task: task, Technique: category.NoCost}]
		}
		if nc > 0 {
			ratio = cb / nc
		}
	}
	b.ReportMetric(ratio, "cost/nocost-found-ratio")
	logTaskTechnique(b, "Figure 10", res.Relevant)
}

// BenchmarkFig11NormalizedCost regenerates Figure 11: items examined per
// relevant tuple found, per task × technique.
func BenchmarkFig11NormalizedCost(b *testing.B) {
	res := cachedStudy(b)
	var avg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for task := 0; task < 4; task++ {
			sum += res.Normalized[experiments.CellKey{Task: task, Technique: category.CostBased}]
		}
		avg = sum / 4
	}
	b.ReportMetric(avg, "costbased-items-per-relevant")
	logTaskTechnique(b, "Figure 11", res.Normalized)
}

// BenchmarkFig12OneScenarioCost regenerates Figure 12: items examined until
// the first relevant tuple, per task × technique.
func BenchmarkFig12OneScenarioCost(b *testing.B) {
	res := cachedStudy(b)
	var avg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for task := 0; task < 4; task++ {
			sum += res.CostOne[experiments.CellKey{Task: task, Technique: category.CostBased}]
		}
		avg = sum / 4
	}
	b.ReportMetric(avg, "costbased-items-to-first")
	logTaskTechnique(b, "Figure 12", res.CostOne)
}

// BenchmarkTable4SurveyVote regenerates Table 4: which technique each
// subject called best (the paper: 8 of 9 respondents chose cost-based).
func BenchmarkTable4SurveyVote(b *testing.B) {
	res := cachedStudy(b)
	var cb int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb = res.Votes[category.CostBased]
	}
	b.ReportMetric(float64(cb), "costbased-votes")
	for _, tech := range experiments.Techniques() {
		b.Logf("Table 4: %-10s %d votes", tech, res.Votes[tech])
	}
	b.Logf("Table 4: did not respond: %d", res.NoResponse)
}

// BenchmarkFig13ExecutionTime regenerates Figure 13: average categorization
// wall-clock per query for M ∈ {10, 20, 50, 100}, as true sub-benchmarks
// over a representative broadened query.
func BenchmarkFig13ExecutionTime(b *testing.B) {
	env := mustEnv(b)
	// Representative user query: a full-region broadening.
	var (
		qw   *sqlparse.Query
		rows []int
	)
	for _, w := range env.W.Queries {
		if q, ok := datagen.Broaden(w); ok {
			r := env.R.Select(q.Predicate())
			if len(r) > 0 {
				qw, rows = q, r
				break
			}
		}
	}
	if qw == nil {
		b.Fatal("no broadenable query")
	}
	for _, m := range []int{10, 20, 50, 100} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			cat := category.NewCategorizer(env.FullStats,
				category.Options{M: m, K: env.Cfg.K, X: env.Cfg.X})
			var tree *category.Tree
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				tree, err = cat.CategorizeRows(env.R, qw, rows)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tree.NodeCount()), "nodes")
			b.ReportMetric(float64(len(rows)), "result-tuples")
		})
	}
}

// BenchmarkAblationOrdering compares the ONE-scenario cost of the paper's
// P-ordering heuristic against the Appendix-A optimal order and a reversed
// order.
func BenchmarkAblationOrdering(b *testing.B) {
	env := mustEnv(b)
	var res *experiments.OrderingAblation
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationOrdering(env, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Heuristic, "heuristic-costone")
	b.ReportMetric(res.Optimal, "optimal-costone")
	b.Logf("Ablation (ordering): heuristic=%.1f optimal=%.1f reversed=%.1f — %s",
		res.Heuristic, res.Optimal, res.Reversed, res.OrderingGapSummary())
}

// BenchmarkAblationSplitGoodness compares goodness-driven splitpoints with
// equi-width buckets under the same attribute sequence.
func BenchmarkAblationSplitGoodness(b *testing.B) {
	env := mustEnv(b)
	var res *experiments.SplitAblation
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationSplitpoints(env, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.EquiWidth/res.GoodnessCost, "equiwidth/goodness")
	b.ReportMetric(res.EquiDepth/res.GoodnessCost, "equidepth/goodness")
	b.Logf("Ablation (splitpoints): goodness=%.1f equi-width=%.1f (×%.2f) equi-depth=%.1f (×%.2f)",
		res.GoodnessCost, res.EquiWidth, res.EquiWidth/res.GoodnessCost,
		res.EquiDepth, res.EquiDepth/res.GoodnessCost)
}

// BenchmarkAblationAttrElimination sweeps the elimination threshold x.
func BenchmarkAblationAttrElimination(b *testing.B) {
	env := mustEnv(b)
	var points []experiments.XPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.AblationX(env, []float64{0.05, 0.2, 0.4, 0.6, 0.8}, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.Logf("Ablation (x): x=%.2f candidates=%d avg-cost=%.1f avg-build=%.1fms",
			p.X, p.Candidates, p.AvgCost, 1000*p.AvgBuild)
	}
}

// BenchmarkAblationK sweeps the label-examination cost K.
func BenchmarkAblationK(b *testing.B) {
	env := mustEnv(b)
	var points []experiments.KPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.AblationK(env, []float64{0.5, 1, 2, 5}, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.Logf("Ablation (K): K=%.1f level1=%s avg-cost=%.1f avg-depth=%.1f",
			p.K, p.Level1Attr, p.AvgCost, p.AvgDepth)
	}
}

// BenchmarkAblationCorrelation compares the paper's independence assumption
// against the §5.2 path-conditional probability model on held-out
// explorations.
func BenchmarkAblationCorrelation(b *testing.B) {
	env := mustEnv(b)
	var res *experiments.CorrelationAblation
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationCorrelation(env, 40)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IndepR, "indep-r")
	b.ReportMetric(res.CondR, "cond-r")
	b.Logf("Ablation (correlation): independent r=%.3f frac=%.3f | conditional r=%.3f frac=%.3f (n=%d)",
		res.IndepR, res.IndepFrac, res.CondR, res.CondFrac, res.N)
}

// BenchmarkAblationRanking measures the §2 complementarity 2×2: flat scan vs
// category tree, each with and without workload-popularity ranking
// (ONE-scenario cost).
func BenchmarkAblationRanking(b *testing.B) {
	env := mustEnv(b)
	var res *experiments.RankingAblation
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationRanking(env, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Tree, "tree-one-cost")
	b.ReportMetric(res.TreeRanked, "tree+rank-one-cost")
	b.Logf("Ablation (ranking): flat=%.1f flat+rank=%.1f tree=%.1f tree+rank=%.1f (n=%d)",
		res.Flat, res.FlatRanked, res.Tree, res.TreeRanked, res.N)
}

// BenchmarkAblationGreedyVsOptimal measures the Figure 6 greedy against the
// §5 bounded enumerative optimum on down-sampled instances.
func BenchmarkAblationGreedyVsOptimal(b *testing.B) {
	env := mustEnv(b)
	var res *experiments.GreedyOptimality
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationGreedyOptimal(env, 4, 120)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AvgRatio, "greedy/optimal-avg")
	b.ReportMetric(res.WorstRatio, "greedy/optimal-worst")
	b.Logf("Ablation (greedy vs optimal): avg %.3f worst %.3f over %d instances (%d trees)",
		res.AvgRatio, res.WorstRatio, res.Instances, res.TreesTried)
}

// --- micro-benchmarks of the core operations -------------------------------

// BenchmarkWorkloadPreprocess measures the offline count-table build.
func BenchmarkWorkloadPreprocess(b *testing.B) {
	env := mustEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.Preprocess(env.W, workload.Config{
			Table:     datagen.TableName,
			Intervals: datagen.Intervals(),
		})
	}
}

// BenchmarkSelect measures predicate evaluation over the base relation,
// with the experiments' secondary indexes and with a plain scan.
func BenchmarkSelect(b *testing.B) {
	env := mustEnv(b)
	q := sqlparse.MustParse("SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA','Bellevue, WA') AND price BETWEEN 200000 AND 300000")
	pred := q.Predicate()
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.R.Select(pred)
		}
	})
	b.Run("scan", func(b *testing.B) {
		plain := datagen.Dataset(datagen.DatasetConfig{Rows: env.Cfg.Rows, Seed: env.Cfg.Seed})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plain.Select(pred)
		}
	})
}

// BenchmarkExploreAll measures one deterministic ALL-scenario exploration.
func BenchmarkExploreAll(b *testing.B) {
	env := mustEnv(b)
	var w *sqlparse.Query
	var qw *sqlparse.Query
	for _, cand := range env.W.Queries {
		if q, ok := datagen.Broaden(cand); ok {
			w, qw = cand, q
			break
		}
	}
	rows := env.R.Select(qw.Predicate())
	cat := category.NewCategorizer(env.FullStats, category.Options{M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X})
	tree, err := cat.CategorizeRows(env.R, qw, rows)
	if err != nil {
		b.Fatal(err)
	}
	ex := &explore.Explorer{K: 1}
	in := &explore.Intent{Query: w}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.All(tree, in)
	}
}

// BenchmarkCostEstimation measures evaluating Eq. 1 and Eq. 2 on a real tree.
func BenchmarkCostEstimation(b *testing.B) {
	env := mustEnv(b)
	var qw *sqlparse.Query
	for _, cand := range env.W.Queries {
		if q, ok := datagen.Broaden(cand); ok {
			qw = q
			break
		}
	}
	rows := env.R.Select(qw.Predicate())
	cat := category.NewCategorizer(env.FullStats, category.Options{M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X})
	tree, err := cat.CategorizeRows(env.R, qw, rows)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		category.TreeCostAll(tree)
		category.TreeCostOne(tree, 0.5)
	}
}

// BenchmarkCategorizeParallel compares sequential and concurrent candidate
// evaluation on one large result set.
func BenchmarkCategorizeParallel(b *testing.B) {
	env := mustEnv(b)
	var qw *sqlparse.Query
	for _, cand := range env.W.Queries {
		if q, ok := datagen.Broaden(cand); ok {
			qw = q
			break
		}
	}
	rows := env.R.Select(qw.Predicate())
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			cat := category.NewCategorizer(env.FullStats, category.Options{
				M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X, Parallel: parallel,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cat.CategorizeRows(env.R, qw, rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCategorizeSharded sweeps the shard-parallel fan-out over a full
// query-driven build — the end-to-end counterpart of the internal/category
// sweep behind BENCH_shard.json.
func BenchmarkCategorizeSharded(b *testing.B) {
	env := mustEnv(b)
	var qw *sqlparse.Query
	for _, cand := range env.W.Queries {
		if q, ok := datagen.Broaden(cand); ok {
			qw = q
			break
		}
	}
	rows := env.R.Select(qw.Predicate())
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cat := category.NewCategorizer(env.FullStats, category.Options{
				M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X, Shards: shards,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cat.CategorizeRows(env.R, qw, rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCategorizeScaling measures the cost-based algorithm as the result
// set grows, confirming the near-linear behaviour behind Figure 13.
func BenchmarkCategorizeScaling(b *testing.B) {
	env := mustEnv(b)
	var qw *sqlparse.Query
	var rows []int
	for _, cand := range env.W.Queries {
		if q, ok := datagen.Broaden(cand); ok {
			r := env.R.Select(q.Predicate())
			if len(r) >= 4000 {
				qw, rows = q, r
				break
			}
		}
	}
	if qw == nil {
		b.Skip("no large-enough region result at this scale")
	}
	cat := category.NewCategorizer(env.FullStats, category.Options{M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X})
	for _, n := range []int{500, 1000, 2000, 4000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			sub := rows[:n]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cat.CategorizeRows(env.R, qw, sub); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionOps measures the treeview session layer's per-operation
// overhead.
func BenchmarkSessionOps(b *testing.B) {
	env := mustEnv(b)
	var qw *sqlparse.Query
	var rows []int
	for _, cand := range env.W.Queries {
		if q, ok := datagen.Broaden(cand); ok {
			qw, rows = q, env.R.Select(q.Predicate())
			break
		}
	}
	cat := category.NewCategorizer(env.FullStats, category.Options{M: env.Cfg.M, K: env.Cfg.K, X: env.Cfg.X})
	tree, err := cat.CategorizeRows(env.R, qw, rows)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := session.New(tree, 1)
		if _, err := s.Expand(nil); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Expand([]int{0}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.ShowTuples([]int{0, 0}); err != nil {
			b.Fatal(err)
		}
		s.Summary()
	}
}
