package repro_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro"
)

func adaptiveFixture(t *testing.T) *repro.AdaptiveSystem {
	t.Helper()
	rel := repro.DemoDataset(3000, 1)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(2000, 2),
		Intervals:   repro.DemoIntervals(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Adaptive()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAdaptiveRequiresRawWorkload(t *testing.T) {
	rel := repro.DemoDataset(100, 1)
	base, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(100, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var stats *repro.WorkloadStats
	stats = base.Stats()
	statsOnly, err := repro.NewSystem(rel, repro.Config{Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := statsOnly.Adaptive(); err == nil {
		t.Fatal("stats-only system should refuse Adaptive")
	}
}

func TestAdaptiveExploreAndLearn(t *testing.T) {
	a := adaptiveFixture(t)
	before := a.WorkloadSize()
	tree, n, err := a.Explore(homesSQL, repro.CostBased, repro.Options{M: 20}, true)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if n == 0 || tree == nil {
		t.Fatal("empty exploration")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.WorkloadSize() != before+1 || a.Learned() != 1 {
		t.Fatalf("learning not recorded: size %d->%d learned %d", before, a.WorkloadSize(), a.Learned())
	}
	// Without learn the workload stays put.
	if _, _, err := a.Explore(homesSQL, repro.CostBased, repro.Options{M: 20}, false); err != nil {
		t.Fatal(err)
	}
	if a.WorkloadSize() != before+1 {
		t.Fatal("non-learning exploration changed the workload")
	}
}

func TestAdaptiveExploreErrors(t *testing.T) {
	a := adaptiveFixture(t)
	if _, _, err := a.Explore("DROP TABLE x", repro.CostBased, repro.Options{}, true); err == nil {
		t.Fatal("bad SQL should error")
	}
	if err := a.Learn("still not sql"); err == nil {
		t.Fatal("bad SQL should error in Learn")
	}
	if a.Learned() != 0 {
		t.Fatal("failed learns must not count")
	}
}

// TestAdaptiveLearningShiftsTrees: hammering the statistics with
// year-built-focused queries must eventually pull yearbuilt into the tree.
func TestAdaptiveLearningShiftsTrees(t *testing.T) {
	a := adaptiveFixture(t)
	treeBefore, _, err := a.Explore(homesSQL, repro.CostBased, repro.Options{M: 20}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, attr := range treeBefore.LevelAttrs {
		if strings.EqualFold(attr, "yearbuilt") {
			t.Skip("yearbuilt already a level before learning")
		}
	}
	for i := 0; i < 3000; i++ {
		if err := a.Learn(fmt.Sprintf(
			"SELECT * FROM ListProperty WHERE yearbuilt BETWEEN %d AND %d", 1900+5*(i%10), 1950)); err != nil {
			t.Fatal(err)
		}
	}
	treeAfter, _, err := a.Explore(homesSQL, repro.CostBased, repro.Options{M: 20}, false)
	if err != nil {
		t.Fatal(err)
	}
	foundYear := false
	for _, attr := range treeAfter.LevelAttrs {
		if strings.EqualFold(attr, "yearbuilt") {
			foundYear = true
		}
	}
	if !foundYear {
		t.Fatalf("after 3000 year-built queries the tree still ignores yearbuilt: %v", treeAfter.LevelAttrs)
	}
}

// TestAdaptiveConcurrent exercises simultaneous explores and learns; run
// with -race.
func TestAdaptiveConcurrent(t *testing.T) {
	a := adaptiveFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, _, err := a.Explore(homesSQL, repro.CostBased, repro.Options{M: 30}, g%2 == 0); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := a.Learn("SELECT * FROM ListProperty WHERE bathcount >= 2"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if a.Learned() != 16+40 {
		t.Fatalf("learned = %d; want 56", a.Learned())
	}
}

func TestAdaptiveSnapshot(t *testing.T) {
	a := adaptiveFixture(t)
	var n int
	a.Snapshot(func(s *repro.System) { n = s.Relation().Len() })
	if n != 3000 {
		t.Fatalf("snapshot saw %d rows", n)
	}
}
