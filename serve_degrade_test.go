package repro

import (
	"context"
	"testing"
	"time"
)

// The soft budget must be enforced on the wall clock, not just by timer
// delivery: on a saturated scheduler (GOMAXPROCS=1 with a CPU-bound build)
// the runtime delivers a soft-budget timer milliseconds late — roughly when
// the build finishes — which would let every build run to completion and
// never degrade. With the clock-based check the ladder degrades regardless
// of timer latency, so this passes deterministically on any core count.
func TestSoftBudgetEnforcedUnderTimerStarvation(t *testing.T) {
	sys, err := NewSystem(DemoDataset(12000, 1), Config{
		WorkloadSQL: DemoWorkloadSQL(3000, 2),
		Intervals:   DemoIntervals(),
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("SELECT * FROM ListProperty WHERE price BETWEEN 150000 AND 450000")
	if err != nil {
		t.Fatal(err)
	}
	// 20µs is far below one candidate evaluation at this scale, so the
	// cost-based rung must be abandoned whether or not its timer fires.
	out, err := sys.ServeParsedWith(context.Background(), q, CostBased, Options{},
		ServePolicy{SoftBudget: 20 * time.Microsecond, Degrade: true})
	if err != nil {
		t.Fatalf("ServeParsedWith: %v", err)
	}
	if out.Degraded == DegradeNone {
		t.Fatal("a 20µs soft budget served a full-fidelity cost-based tree; the budget was not observed")
	}
	if out.Tree == nil {
		t.Fatal("degraded serve returned no tree")
	}
}
