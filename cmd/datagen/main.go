// Command datagen materializes the synthetic evaluation substrate to files:
// the ListProperty table as CSV, the buyer workload as a SQL log (one
// statement per line), and optionally the preprocessed count tables as a gob
// blob that NewSystem can load directly (Config.Stats).
//
// Usage:
//
//	datagen [-rows N] [-queries N] [-seed N] [-dir DIR] [-stats]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	var (
		rows      = flag.Int("rows", 20000, "dataset size")
		queries   = flag.Int("queries", 10000, "workload size")
		seed      = flag.Int64("seed", 1, "generation seed")
		dir       = flag.String("dir", ".", "output directory")
		withStats = flag.Bool("stats", false, "also write preprocessed count tables (stats.gob)")
	)
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	rel := datagen.Dataset(datagen.DatasetConfig{Rows: *rows, Seed: *seed})
	csvPath := filepath.Join(*dir, "listproperty.csv")
	if err := writeCSV(csvPath, rel); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d rows × %d columns)\n", csvPath, rel.Len(), rel.Schema().Len())

	sql := datagen.WorkloadSQL(datagen.WorkloadConfig{Queries: *queries, Seed: *seed + 1})
	sqlPath := filepath.Join(*dir, "workload.sql")
	if err := writeLines(sqlPath, sql); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d queries)\n", sqlPath, len(sql))

	if *withStats {
		w, err := workload.ParseStrings(sql)
		if err != nil {
			fatal(err)
		}
		stats := workload.Preprocess(w, workload.Config{
			Table:     datagen.TableName,
			Intervals: datagen.Intervals(),
		})
		statsPath := filepath.Join(*dir, "stats.gob")
		f, err := os.Create(statsPath)
		if err != nil {
			fatal(err)
		}
		if err := repro.SaveStats(stats, f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (count tables over %d queries)\n", statsPath, stats.N())
	}
}

func writeCSV(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	schema := rel.Schema()
	header := make([]string, schema.Len())
	for i := range header {
		header[i] = schema.Attr(i).Name
	}
	if err := w.Write(header); err != nil {
		return err
	}
	record := make([]string, schema.Len())
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		for j := range record {
			if schema.Attr(j).Type == relation.Categorical {
				record[j] = row[j].Str
			} else {
				record[j] = strconv.FormatFloat(row[j].Num, 'f', -1, 64)
			}
		}
		if err := w.Write(record); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeLines(path string, lines []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, line := range lines {
		if _, err := fmt.Fprintln(f, line); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
