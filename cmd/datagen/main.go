// Command datagen materializes the synthetic evaluation substrate to files:
// the ListProperty table as CSV, the buyer workload as a SQL log (one
// statement per line), and optionally the preprocessed count tables as a gob
// blob that NewSystem can load directly (Config.Stats).
//
// Usage:
//
//	datagen [-rows N] [-queries N] [-seed N] [-dir DIR] [-stats] [-stream]
//
// With -stream the dataset is generated row by row straight to disk in
// constant memory (the output is byte-identical to the materialized path),
// so paper-scale and larger files — 1.7M rows, 10M rows — need no
// proportional RAM.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	var (
		rows      = flag.Int("rows", 20000, "dataset size")
		queries   = flag.Int("queries", 10000, "workload size")
		seed      = flag.Int64("seed", 1, "generation seed")
		dir       = flag.String("dir", ".", "output directory")
		withStats = flag.Bool("stats", false, "also write preprocessed count tables (stats.gob)")
		stream    = flag.Bool("stream", false, "stream the dataset CSV row by row in constant memory")
	)
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	cfg := datagen.DatasetConfig{Rows: *rows, Seed: *seed}
	csvPath := filepath.Join(*dir, "listproperty.csv")
	var nRows, nCols int
	if *stream {
		n, err := streamCSV(csvPath, cfg)
		if err != nil {
			fatal(err)
		}
		nRows, nCols = n, datagen.Schema(cfg).Len()
	} else {
		rel := datagen.Dataset(cfg)
		if err := writeCSV(csvPath, rel); err != nil {
			fatal(err)
		}
		nRows, nCols = rel.Len(), rel.Schema().Len()
	}
	fmt.Printf("wrote %s (%d rows × %d columns)\n", csvPath, nRows, nCols)

	sql := datagen.WorkloadSQL(datagen.WorkloadConfig{Queries: *queries, Seed: *seed + 1})
	sqlPath := filepath.Join(*dir, "workload.sql")
	if err := writeLines(sqlPath, sql); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d queries)\n", sqlPath, len(sql))

	if *withStats {
		w, err := workload.ParseStrings(sql)
		if err != nil {
			fatal(err)
		}
		stats := workload.Preprocess(w, workload.Config{
			Table:     datagen.TableName,
			Intervals: datagen.Intervals(),
		})
		statsPath := filepath.Join(*dir, "stats.gob")
		f, err := os.Create(statsPath)
		if err != nil {
			fatal(err)
		}
		if err := repro.SaveStats(stats, f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (count tables over %d queries)\n", statsPath, stats.N())
	}
}

func writeCSV(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rel.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func streamCSV(path string, cfg datagen.DatasetConfig) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := datagen.StreamCSV(f, cfg)
	if err != nil {
		return n, err
	}
	return n, f.Close()
}

func writeLines(path string, lines []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, line := range lines {
		if _, err := fmt.Fprintln(f, line); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
