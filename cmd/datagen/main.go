// Command datagen materializes the synthetic evaluation substrate to files:
// the ListProperty table as CSV, the buyer workload as a SQL log (one
// statement per line), and optionally the preprocessed count tables as a gob
// blob that NewSystem can load directly (Config.Stats).
//
// Usage:
//
//	datagen [-rows N] [-queries N] [-seed N] [-dir DIR] [-stats] [-stream] [-spill DIR]
//
// With -stream the dataset is generated row by row straight to disk in
// constant memory (the output is byte-identical to the materialized path),
// so paper-scale and larger files — 1.7M rows, 10M rows — need no
// proportional RAM.
//
// With -spill DIR the dataset is additionally ingested — also row by row in
// constant memory — into a crash-consistent durable segment store at DIR
// (DESIGN.md §15), ready for `catserve -data-dir DIR`. Sealed segments spill
// as they fill, so RAM stays bounded by one segment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/relation/durable"
	"repro/internal/workload"
)

func main() {
	var (
		rows      = flag.Int("rows", 20000, "dataset size")
		queries   = flag.Int("queries", 10000, "workload size")
		seed      = flag.Int64("seed", 1, "generation seed")
		dir       = flag.String("dir", ".", "output directory")
		withStats = flag.Bool("stats", false, "also write preprocessed count tables (stats.gob)")
		stream    = flag.Bool("stream", false, "stream the dataset CSV row by row in constant memory")
		spill     = flag.String("spill", "", "also ingest the dataset into a durable segment store at this directory (constant memory)")
	)
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	cfg := datagen.DatasetConfig{Rows: *rows, Seed: *seed}
	csvPath := filepath.Join(*dir, "listproperty.csv")
	var nRows, nCols int
	if *stream {
		n, err := streamCSV(csvPath, cfg)
		if err != nil {
			fatal(err)
		}
		nRows, nCols = n, datagen.Schema(cfg).Len()
	} else {
		rel := datagen.Dataset(cfg)
		if err := writeCSV(csvPath, rel); err != nil {
			fatal(err)
		}
		nRows, nCols = rel.Len(), rel.Schema().Len()
	}
	fmt.Printf("wrote %s (%d rows × %d columns)\n", csvPath, nRows, nCols)

	if *spill != "" {
		n, size, err := spillStore(*spill, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spilled %s (%d rows, %d segment files)\n", *spill, n, size)
	}

	sql := datagen.WorkloadSQL(datagen.WorkloadConfig{Queries: *queries, Seed: *seed + 1})
	sqlPath := filepath.Join(*dir, "workload.sql")
	if err := writeLines(sqlPath, sql); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d queries)\n", sqlPath, len(sql))

	if *withStats {
		w, err := workload.ParseStrings(sql)
		if err != nil {
			fatal(err)
		}
		stats := workload.Preprocess(w, workload.Config{
			Table:     datagen.TableName,
			Intervals: datagen.Intervals(),
		})
		statsPath := filepath.Join(*dir, "stats.gob")
		f, err := os.Create(statsPath)
		if err != nil {
			fatal(err)
		}
		if err := repro.SaveStats(stats, f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (count tables over %d queries)\n", statsPath, stats.N())
	}
}

func writeCSV(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rel.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func streamCSV(path string, cfg datagen.DatasetConfig) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := datagen.StreamCSV(f, cfg)
	if err != nil {
		return n, err
	}
	return n, f.Close()
}

// spillStore streams the dataset row by row into a fresh durable segment
// store: segments seal and spill as they fill, so memory stays bounded by
// one segment regardless of -rows. SyncNone skips per-append fsyncs — a
// bulk load restarts from scratch on a crash — while Close still syncs, so
// the finished store is fully durable.
func spillStore(dir string, cfg datagen.DatasetConfig) (rows, segments int, err error) {
	st, err := durable.Create(dir, datagen.Schema(cfg), durable.Options{Sync: durable.SyncNone})
	if err != nil {
		return 0, 0, err
	}
	err = datagen.Stream(cfg, func(i int, t relation.Tuple) error {
		rows++
		return st.Append(t)
	})
	if err != nil {
		st.Abandon()
		return rows, 0, err
	}
	if err := st.Close(); err != nil {
		return rows, 0, err
	}
	st, err = durable.Open(dir, durable.Options{ReadOnly: true})
	if err != nil {
		return rows, 0, fmt.Errorf("spilled store fails to reopen: %w", err)
	}
	defer st.Close()
	return rows, st.Stats().Segments, nil
}

func writeLines(path string, lines []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, line := range lines {
		if _, err := fmt.Fprintln(f, line); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
