// Command catexplore is an interactive shell over a (generated or loaded)
// home-listing database: type SQL queries and browse their automatically
// categorized results — the text-mode equivalent of the paper's treeview UI.
//
// Usage:
//
//	catexplore [-rows N] [-queries N] [-seed N] [-workload file] [-m N] [-x F] [-k F] [-technique cost|attr|nocost]
//
// Then at the prompt:
//
//	> SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN 200000 AND 400000
//	> .browse              categorize the whole table
//	> .depth 3             set rendering depth
//	> .help                list commands
//	> .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		rows      = flag.Int("rows", 20000, "synthetic dataset size")
		queries   = flag.Int("queries", 10000, "synthetic workload size")
		seed      = flag.Int64("seed", 1, "generation seed")
		wlFile    = flag.String("workload", "", "path to a SQL query log (one statement per line); replaces the synthetic workload")
		m         = flag.Int("m", 20, "max tuples per category (M)")
		x         = flag.Float64("x", 0.4, "attribute elimination threshold")
		k         = flag.Float64("k", 1, "label examination cost (K)")
		technique = flag.String("technique", "cost", "categorization technique: cost, attr, or nocost")
	)
	flag.Parse()

	tech, err := parseTechnique(*technique)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generating %d homes and %d workload queries…\n", *rows, *queries)
	rel := repro.DemoDataset(*rows, *seed)
	cfg := repro.Config{Intervals: repro.DemoIntervals()}
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.WorkloadReader = f
	} else {
		cfg.WorkloadSQL = repro.DemoWorkloadSQL(*queries, *seed+1)
	}
	sys, err := repro.NewSystem(rel, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := repro.Options{M: *m, X: *x, K: *k}

	fmt.Fprintf(os.Stderr, "ready — %d homes, %d mined queries. Type .help for commands.\n",
		rel.Len(), sys.Stats().N())

	renderOpts := repro.RenderOptions{MaxDepth: 2, MaxChildren: 8}
	var (
		lastRes  *repro.Result
		lastTree *repro.Tree
		ranked   bool
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println(`commands:
  SELECT …            run a query and categorize its result
  .browse             categorize the entire table
  .drill I [J …]      refine the last query to the category at child path I J …
  .rank               toggle workload-popularity ranking of tuples
  .stats              show workload attribute usage (what drives elimination)
  .dot [file]         dump the last tree as Graphviz (stdout or file)
  .depth N            set rendering depth (0 = unlimited)
  .children N         max children rendered per node (0 = unlimited)
  .probs              toggle probability annotations
  .technique T        cost | attr | nocost
  .m N  .x F  .k F    categorizer parameters
  .quit`)
		case line == ".browse":
			lastRes, lastTree = show(sys, sys.Browse(), tech, opts, renderOpts, ranked)
		case line == ".rank":
			ranked = !ranked
			fmt.Printf("ranking: %v\n", ranked)
		case line == ".stats":
			stats := sys.Stats()
			fmt.Printf("%d mined queries; attribute usage (x = %.2f retains those above the line):\n", stats.N(), opts.X)
			for _, attr := range stats.AttrsByUsage() {
				frac := stats.UsageFraction(attr)
				marker := " "
				if frac >= opts.X {
					marker = "*"
				}
				fmt.Printf("  %s %-20s %.3f\n", marker, attr, frac)
			}
		case strings.HasPrefix(line, ".dot"):
			if lastTree == nil {
				fmt.Println("no previous tree")
				break
			}
			dot := repro.RenderDOT(lastTree, repro.DOTOptions{MaxDepth: renderOpts.MaxDepth, MaxChildren: renderOpts.MaxChildren})
			if target := strings.TrimSpace(line[4:]); target != "" {
				if err := os.WriteFile(target, []byte(dot), 0o644); err != nil {
					fmt.Println(err)
				} else {
					fmt.Printf("wrote %s\n", target)
				}
			} else {
				fmt.Print(dot)
			}
		case strings.HasPrefix(line, ".drill"):
			if lastTree == nil || lastRes == nil {
				fmt.Println("no previous query to drill into")
				break
			}
			path, err := parsePath(line[len(".drill"):])
			if err != nil {
				fmt.Println(err)
				break
			}
			refined, err := lastTree.RefineQuery(lastRes.Query, path)
			if err != nil {
				fmt.Println(err)
				break
			}
			fmt.Printf("refined query: %s\n", refined)
			lastRes, lastTree = show(sys, sys.QueryParsed(refined), tech, opts, renderOpts, ranked)
		case line == ".probs":
			renderOpts.ShowProbabilities = !renderOpts.ShowProbabilities
			fmt.Printf("probabilities: %v\n", renderOpts.ShowProbabilities)
		case strings.HasPrefix(line, ".depth "):
			renderOpts.MaxDepth = atoiOr(line[7:], renderOpts.MaxDepth)
		case strings.HasPrefix(line, ".children "):
			renderOpts.MaxChildren = atoiOr(line[10:], renderOpts.MaxChildren)
		case strings.HasPrefix(line, ".technique "):
			if t, err := parseTechnique(strings.TrimSpace(line[11:])); err != nil {
				fmt.Println(err)
			} else {
				tech = t
				fmt.Printf("technique: %v\n", tech)
			}
		case strings.HasPrefix(line, ".m "):
			opts.M = atoiOr(line[3:], opts.M)
		case strings.HasPrefix(line, ".x "):
			opts.X = atofOr(line[3:], opts.X)
		case strings.HasPrefix(line, ".k "):
			opts.K = atofOr(line[3:], opts.K)
		case strings.HasPrefix(strings.ToUpper(line), "SELECT"):
			res, err := sys.Query(line)
			if err != nil {
				fmt.Println(err)
				break
			}
			lastRes, lastTree = show(sys, res, tech, opts, renderOpts, ranked)
		default:
			fmt.Println("unrecognized input; type .help")
		}
		fmt.Print("> ")
	}
}

func show(sys *repro.System, res *repro.Result, tech repro.Technique, opts repro.Options, ro repro.RenderOptions, ranked bool) (*repro.Result, *repro.Tree) {
	fmt.Printf("%d tuples.\n", res.Len())
	tree, err := res.CategorizeWith(tech, opts)
	if err != nil {
		fmt.Println(err)
		return res, nil
	}
	if ranked {
		repro.RankTree(sys.Ranker(), tree)
	}
	fmt.Printf("levels %v, %d categories, estimated exploration cost %.0f (ALL) / %.0f (ONE)\n",
		tree.LevelAttrs, tree.NodeCount(),
		repro.EstimateCostAll(tree), repro.EstimateCostOne(tree, 0.5))
	fmt.Print(repro.RenderTree(tree, ro))
	return res, tree
}

// parsePath parses the space-separated child indexes of a .drill command.
func parsePath(args string) ([]int, error) {
	fields := strings.Fields(args)
	if len(fields) == 0 {
		return nil, fmt.Errorf("usage: .drill I [J …]")
	}
	path := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad path element %q", f)
		}
		path[i] = v
	}
	return path, nil
}

func parseTechnique(s string) (repro.Technique, error) {
	switch strings.ToLower(s) {
	case "cost", "cost-based", "costbased":
		return repro.CostBased, nil
	case "attr", "attr-cost", "attrcost":
		return repro.AttrCost, nil
	case "nocost", "no-cost", "no":
		return repro.NoCost, nil
	default:
		return 0, fmt.Errorf("unknown technique %q (want cost, attr, or nocost)", s)
	}
}

func atoiOr(s string, def int) int {
	if v, err := strconv.Atoi(strings.TrimSpace(s)); err == nil {
		return v
	}
	fmt.Println("not a number; value unchanged")
	return def
}

func atofOr(s string, def float64) float64 {
	if v, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
		return v
	}
	fmt.Println("not a number; value unchanged")
	return def
}
