// Command catserve runs the categorization HTTP service over a generated
// (or CSV-loaded) dataset.
//
// Usage:
//
//	catserve [-addr :8080] [-rows N] [-queries N] [-seed N] [-csv file] [-workload file] [-correlations] [-learn] [-cache-entries N] [-cache-mb N]
//
// Then:
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/query -d '{"sql":"SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000","maxDepth":2}'
//	curl -X POST localhost:8080/v1/refine -d '{"sql":"…","path":[0,1]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/relation"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		rows    = flag.Int("rows", 20000, "synthetic dataset size (ignored with -csv)")
		queries = flag.Int("queries", 10000, "synthetic workload size (ignored with -workload)")
		seed    = flag.Int64("seed", 1, "generation seed")
		csvPath = flag.String("csv", "", "load the relation from this CSV instead of generating")
		wlPath  = flag.String("workload", "", "load the workload from this SQL log instead of generating")
		corr    = flag.Bool("correlations", false, "enable the path-conditional probability model")
		learn   = flag.Bool("learn", false, "fold every served query into the workload statistics")

		cacheEntries = flag.Int("cache-entries", 256, "tree cache entry bound (0 with -cache-mb 0 disables caching)")
		cacheMB      = flag.Int64("cache-mb", 64, "tree cache byte bound in MiB")
	)
	flag.Parse()

	var rel *repro.Relation
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		rel, err = relation.ReadCSV("ListProperty", f, nil)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rel = repro.DemoDataset(*rows, *seed)
	}

	cfg := repro.Config{
		Intervals:        repro.DemoIntervals(),
		Correlations:     *corr,
		TreeCacheEntries: *cacheEntries,
		TreeCacheBytes:   *cacheMB << 20,
	}
	if *wlPath != "" {
		f, err := os.Open(*wlPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.WorkloadReader = f
	} else {
		cfg.WorkloadSQL = repro.DemoWorkloadSQL(*queries, *seed+1)
	}
	sys, err := repro.NewSystem(rel, cfg)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(server.Config{System: sys, MaxDepth: 6, MaxChildren: 200, Learn: *learn})
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("catserve: %d rows, %d workload queries, listening on %s\n",
		rel.Len(), sys.Stats().N(), *addr)
	log.Fatal(hs.ListenAndServe())
}
