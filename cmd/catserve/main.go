// Command catserve runs the categorization HTTP service over a generated
// (or CSV-loaded) dataset.
//
// Usage:
//
//	catserve [-addr :8080] [-rows N] [-queries N] [-seed N] [-csv file] [-workload file] [-correlations] [-learn] [-cache-entries N] [-cache-mb N] [-max-concurrent N] [-max-queue N] [-deadline D] [-soft-budget D] [-degrade] [-drain D]
//
// Then:
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/query -d '{"sql":"SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000","maxDepth":2}'
//	curl -X POST localhost:8080/v1/refine -d '{"sql":"…","path":[0,1]}'
//
// SIGINT/SIGTERM drains gracefully: new categorization requests are shed
// with 503 while in-flight ones get up to -drain to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/relation"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		rows    = flag.Int("rows", 20000, "synthetic dataset size (ignored with -csv)")
		queries = flag.Int("queries", 10000, "synthetic workload size (ignored with -workload)")
		seed    = flag.Int64("seed", 1, "generation seed")
		csvPath = flag.String("csv", "", "load the relation from this CSV instead of generating")
		wlPath  = flag.String("workload", "", "load the workload from this SQL log instead of generating")
		corr    = flag.Bool("correlations", false, "enable the path-conditional probability model")
		learn   = flag.Bool("learn", false, "fold every served query into the workload statistics")
		shards  = flag.Int("shards", 0, "shard-parallel fan-out per categorization build (0 = GOMAXPROCS, 1 = off)")

		cacheEntries = flag.Int("cache-entries", 256, "tree cache entry bound (0 with -cache-mb 0 disables caching)")
		cacheMB      = flag.Int64("cache-mb", 64, "tree cache byte bound in MiB")

		maxConcurrent = flag.Int("max-concurrent", 0, "max concurrent categorization computations (0 disables admission control)")
		maxQueue      = flag.Int("max-queue", 0, "max requests queued for a computation slot (0 = 2x max-concurrent, negative = no queue)")
		deadline      = flag.Duration("deadline", 0, "server-imposed deadline per categorization request (0 = none; exceeded = 504)")
		softBudget    = flag.Duration("soft-budget", 0, "budget before -degrade steps down the technique (0 = half the deadline)")
		degrade       = flag.Bool("degrade", false, "serve cheaper approximations instead of 504 when the soft budget is blown")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window for in-flight requests")

		warmTopK   = flag.Int("warm-topk", 0, "pre-warm this many top signatures after each learn (requires -learn; 0 = off)")
		warmBudget = flag.Duration("warm-budget", 0, "wall budget per pre-warming build (0 = 2s default)")
	)
	flag.Parse()

	var rel *repro.Relation
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		rel, err = relation.ReadCSV("ListProperty", f, nil)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rel = repro.DemoDataset(*rows, *seed)
	}

	cfg := repro.Config{
		Intervals:        repro.DemoIntervals(),
		Correlations:     *corr,
		Shards:           *shards,
		TreeCacheEntries: *cacheEntries,
		TreeCacheBytes:   *cacheMB << 20,
	}
	if *wlPath != "" {
		f, err := os.Open(*wlPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.WorkloadReader = f
	} else {
		cfg.WorkloadSQL = repro.DemoWorkloadSQL(*queries, *seed+1)
	}
	sys, err := repro.NewSystem(rel, cfg)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(server.Config{
		System:        sys,
		MaxDepth:      6,
		MaxChildren:   200,
		Learn:         *learn,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Deadline:      *deadline,
		SoftBudget:    *softBudget,
		Degrade:       *degrade,
		WarmTopK:      *warmTopK,
		WarmBudget:    *warmBudget,
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("catserve: %d rows, %d workload queries, listening on %s\n",
		rel.Len(), sys.Stats().N(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("catserve: draining…")
	srv.BeginShutdown()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("catserve: drain incomplete: %v", err)
		os.Exit(1)
	}
	fmt.Println("catserve: bye")
}
