// Command catserve runs the categorization HTTP service over a generated
// (or CSV-loaded) dataset.
//
// Usage:
//
//	catserve [-addr :8080] [-rows N] [-queries N] [-seed N] [-csv file] [-workload file] [-data-dir DIR] [-fsync POLICY] [-correlations] [-learn] [-cache-entries N] [-cache-mb N] [-max-concurrent N] [-max-queue N] [-deadline D] [-soft-budget D] [-degrade] [-drain D]
//
// Then:
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/query -d '{"sql":"SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000","maxDepth":2}'
//	curl -X POST localhost:8080/v1/refine -d '{"sql":"…","path":[0,1]}'
//
// With -data-dir the relation lives in a crash-consistent durable segment
// store (DESIGN.md §15): a directory already holding a store is reopened with
// full recovery (WAL replay, torn-tail repair, corrupt-segment quarantine —
// the server then runs degraded rather than refusing to start), while an
// empty one is created and seeded with the generated or CSV dataset through
// the WAL'd ingest path. -fsync picks the append sync policy.
//
// SIGINT/SIGTERM drains gracefully: new categorization requests are shed
// with 503 while in-flight ones get up to -drain to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/relation"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		rows    = flag.Int("rows", 20000, "synthetic dataset size (ignored with -csv)")
		queries = flag.Int("queries", 10000, "synthetic workload size (ignored with -workload)")
		seed    = flag.Int64("seed", 1, "generation seed")
		csvPath = flag.String("csv", "", "load the relation from this CSV instead of generating")
		wlPath  = flag.String("workload", "", "load the workload from this SQL log instead of generating")
		dataDir = flag.String("data-dir", "", "durable segment store directory: reopened (with crash recovery) when it holds a store, else created and seeded with the dataset")
		fsyncP  = flag.String("fsync", "batch", "durable store append sync policy: always, batch, or none (with -data-dir)")
		corr    = flag.Bool("correlations", false, "enable the path-conditional probability model")
		learn   = flag.Bool("learn", false, "fold every served query into the workload statistics")
		shards  = flag.Int("shards", 0, "shard-parallel fan-out per categorization build (0 = GOMAXPROCS, 1 = off)")

		cacheEntries = flag.Int("cache-entries", 256, "tree cache entry bound (0 with -cache-mb 0 disables caching)")
		cacheMB      = flag.Int64("cache-mb", 64, "tree cache byte bound in MiB")

		maxConcurrent = flag.Int("max-concurrent", 0, "max concurrent categorization computations (0 disables admission control)")
		maxQueue      = flag.Int("max-queue", 0, "max requests queued for a computation slot (0 = 2x max-concurrent, negative = no queue)")
		deadline      = flag.Duration("deadline", 0, "server-imposed deadline per categorization request (0 = none; exceeded = 504)")
		softBudget    = flag.Duration("soft-budget", 0, "budget before -degrade steps down the technique (0 = half the deadline)")
		degrade       = flag.Bool("degrade", false, "serve cheaper approximations instead of 504 when the soft budget is blown")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window for in-flight requests")

		warmTopK   = flag.Int("warm-topk", 0, "pre-warm this many top signatures after each learn (requires -learn; 0 = off)")
		warmBudget = flag.Duration("warm-budget", 0, "wall budget per pre-warming build (0 = 2s default)")
	)
	flag.Parse()

	// loadRel materializes the configured dataset in memory (CSV or demo).
	loadRel := func() *repro.Relation {
		if *csvPath != "" {
			f, err := os.Open(*csvPath)
			if err != nil {
				log.Fatal(err)
			}
			rel, err := relation.ReadCSV("ListProperty", f, nil)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			return rel
		}
		return repro.DemoDataset(*rows, *seed)
	}

	var (
		rel *repro.Relation
		dur *repro.DurableStore
	)
	if *dataDir == "" {
		rel = loadRel()
	} else {
		pol, err := repro.ParseSyncPolicy(*fsyncP)
		if err != nil {
			log.Fatal(err)
		}
		opts := repro.DurableOptions{Sync: pol}
		switch dur, err = repro.OpenDurable(*dataDir, opts); {
		case err == nil:
			// Reopened: the store's surviving rows ARE the dataset; -rows and
			// -csv describe only how a fresh store would be seeded.
			rel, err = dur.Relation("ListProperty")
			if err != nil {
				log.Fatal(err)
			}
			ds := dur.Stats()
			fmt.Printf("catserve: recovered %s: %d segments, %d rows (torn tail: %v)\n",
				*dataDir, ds.Segments, ds.SealedRows+ds.TailRows, ds.RecoveredTorn)
			if ds.Degraded {
				fmt.Printf("catserve: DEGRADED storage — %d rows quarantined across %d segments\n",
					ds.QuarantinedRows, len(ds.Quarantined))
			}
		case repro.IsDurableNotExist(err):
			// Fresh directory: seed it through the WAL'd ingest path so the
			// store is crash-consistent from the first row.
			rel = loadRel()
			dur, err = repro.CreateDurable(*dataDir, rel.Schema(), opts)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < rel.Len(); i++ {
				if err := dur.Append(rel.Row(i)); err != nil {
					log.Fatal(err)
				}
			}
			if err := dur.Sync(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("catserve: seeded %s with %d rows (fsync=%s)\n", *dataDir, rel.Len(), pol)
		default:
			log.Fatal(err)
		}
	}

	cfg := repro.Config{
		Durable:          dur,
		Intervals:        repro.DemoIntervals(),
		Correlations:     *corr,
		Shards:           *shards,
		TreeCacheEntries: *cacheEntries,
		TreeCacheBytes:   *cacheMB << 20,
	}
	if *wlPath != "" {
		f, err := os.Open(*wlPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.WorkloadReader = f
	} else {
		cfg.WorkloadSQL = repro.DemoWorkloadSQL(*queries, *seed+1)
	}
	sys, err := repro.NewSystem(rel, cfg)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(server.Config{
		System:        sys,
		MaxDepth:      6,
		MaxChildren:   200,
		Learn:         *learn,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Deadline:      *deadline,
		SoftBudget:    *softBudget,
		Degrade:       *degrade,
		WarmTopK:      *warmTopK,
		WarmBudget:    *warmBudget,
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("catserve: %d rows, %d workload queries, listening on %s\n",
		rel.Len(), sys.Stats().N(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("catserve: draining…")
	srv.BeginShutdown()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("catserve: drain incomplete: %v", err)
		os.Exit(1)
	}
	if dur != nil {
		// Graceful close fsyncs the tail regardless of -fsync policy.
		if err := dur.Close(); err != nil {
			log.Printf("catserve: closing durable store: %v", err)
			os.Exit(1)
		}
	}
	fmt.Println("catserve: bye")
}
