// Command benchrunner reproduces every table and figure of the paper's
// evaluation (§6) at full scale and prints them as formatted tables — the
// report that EXPERIMENTS.md records.
//
// Usage:
//
//	benchrunner [-rows N] [-queries N] [-subsets N] [-persubset N] [-seed N] [-out file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/category"
	"repro/internal/experiments"
	"repro/internal/render"
)

func main() {
	var (
		rows      = flag.Int("rows", 20000, "dataset size")
		queries   = flag.Int("queries", 10000, "workload size")
		subsets   = flag.Int("subsets", 8, "cross-validation subsets (§6.2)")
		perSubset = flag.Int("persubset", 100, "held-out queries per subset")
		seed      = flag.Int64("seed", 1, "generation seed")
		outPath   = flag.String("out", "", "also write the report to this file")
		jsonPath  = flag.String("json", "", "also write the structured results as JSON to this file")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	fmt.Fprintf(out, "== Automatic Categorization of Query Results — evaluation reproduction ==\n")
	fmt.Fprintf(out, "dataset %d rows, workload %d queries, %d×%d held-out explorations, seed %d\n\n",
		*rows, *queries, *subsets, *perSubset, *seed)

	env, err := experiments.NewEnv(experiments.Config{
		Rows: *rows, Queries: *queries, Subsets: *subsets, PerSubset: *perSubset, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	syn, err := experiments.SyntheticStudy(env)
	if err != nil {
		fatal(err)
	}
	printSynthetic(out, syn)

	study, err := experiments.RealLifeStudy(env)
	if err != nil {
		fatal(err)
	}
	printStudy(out, study)

	timing, err := experiments.ExecutionTime(env, []int{10, 20, 50, 100}, 100)
	if err != nil {
		fatal(err)
	}
	printTiming(out, timing)

	if err := printAblations(out, env); err != nil {
		fatal(err)
	}

	if *jsonPath != "" {
		if err := writeJSONResults(*jsonPath, syn, study, timing); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "\nstructured results written to %s\n", *jsonPath)
	}

	fmt.Fprintf(out, "\ntotal runtime: %s\n", time.Since(start).Round(time.Millisecond))
}

// writeJSONResults dumps the machine-readable form of the study outputs so
// downstream analysis (plots, regression tracking) need not re-parse the
// text report.
func writeJSONResults(path string, syn *experiments.SyntheticResult, study *experiments.StudyResult, timing *experiments.TimingResult) error {
	type cell struct {
		Task      int     `json:"task"`
		Technique string  `json:"technique"`
		Value     float64 `json:"value"`
	}
	flatten := func(m map[experiments.CellKey]float64) []cell {
		var out []cell
		for task := 0; task < 4; task++ {
			for _, tech := range experiments.Techniques() {
				out = append(out, cell{Task: task + 1, Technique: tech.String(),
					Value: m[experiments.CellKey{Task: task, Technique: tech}]})
			}
		}
		return out
	}
	payload := map[string]any{
		"figure7":  map[string]any{"slope": syn.Slope, "pearsonAll": syn.OverallR, "explorations": len(syn.Explorations)},
		"table1":   syn.Subsets,
		"table2":   study.PerUser,
		"figure9":  flatten(study.CostAll),
		"figure10": flatten(study.Relevant),
		"figure11": flatten(study.Normalized),
		"figure12": flatten(study.CostOne),
		"table3":   experiments.Table3(study),
		"table4":   map[string]any{"votes": voteNames(study), "noResponse": study.NoResponse},
		"figure13": timing.Points,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

func voteNames(study *experiments.StudyResult) map[string]int {
	out := map[string]int{}
	for tech, n := range study.Votes {
		out[tech.String()] = n
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}

func printSynthetic(out io.Writer, syn *experiments.SyntheticResult) {
	fmt.Fprintf(out, "-- Figure 7: estimated vs actual cost (%d synthetic explorations) --\n", len(syn.Explorations))
	fmt.Fprintf(out, "trend line: y = %.4fx   (paper: y = 1.1002x)\n\n", syn.Slope)

	fmt.Fprintln(out, "-- Table 1: Pearson correlation per subset --")
	rows := make([][]string, 0, len(syn.Subsets)+1)
	for _, s := range syn.Subsets {
		rows = append(rows, []string{fmt.Sprintf("%d", s.Index+1), fmt.Sprintf("%.2f", s.PearsonR)})
	}
	rows = append(rows, []string{"All", fmt.Sprintf("%.2f", syn.OverallR)})
	must(render.Table(out, []string{"Subset", "Correlation"}, rows))
	fmt.Fprintln(out, "(paper: subsets 0.16-0.98, All 0.90)")

	fmt.Fprintln(out, "\n-- Figure 8: fraction of result set examined per subset --")
	rows = rows[:0]
	for _, s := range syn.Subsets {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Index+1),
			fmt.Sprintf("%.4f", s.FracCost[category.CostBased]),
			fmt.Sprintf("%.4f", s.FracCost[category.AttrCost]),
			fmt.Sprintf("%.4f", s.FracCost[category.NoCost]),
		})
	}
	must(render.Table(out, []string{"Subset", "Cost-based", "Attr-cost", "No cost"}, rows))
	fmt.Fprintln(out, "(paper: cost-based a factor 3-8 below the others)")
	fmt.Fprintln(out)
}

func printStudy(out io.Writer, study *experiments.StudyResult) {
	fmt.Fprintln(out, "-- Table 2: per-subject correlation, estimated vs actual cost --")
	rows := make([][]string, 0, len(study.PerUser)+1)
	for _, u := range study.PerUser {
		val := "n/a"
		if u.OK {
			val = fmt.Sprintf("%.2f", u.R)
		}
		rows = append(rows, []string{fmt.Sprintf("U%d", u.Subject+1), val, fmt.Sprintf("%d", u.N)})
	}
	rows = append(rows, []string{"average", fmt.Sprintf("%.2f", study.AvgUserR), ""})
	must(render.Table(out, []string{"User", "Correlation", "Explorations"}, rows))
	fmt.Fprintln(out, "(paper: average 0.67; 9 of 11 between 0.6 and 1.0)")

	cell := func(m map[experiments.CellKey]float64, task int, tech category.Technique) string {
		return fmt.Sprintf("%.1f", m[experiments.CellKey{Task: task, Technique: tech}])
	}
	panel := func(title, note string, m map[experiments.CellKey]float64) {
		fmt.Fprintf(out, "\n-- %s --\n", title)
		rows := make([][]string, 0, 4)
		for task := 0; task < 4; task++ {
			rows = append(rows, []string{
				fmt.Sprintf("Task %d", task+1),
				cell(m, task, category.CostBased),
				cell(m, task, category.AttrCost),
				cell(m, task, category.NoCost),
			})
		}
		must(render.Table(out, []string{"", "Cost-based", "Attr-cost", "No cost"}, rows))
		if note != "" {
			fmt.Fprintln(out, note)
		}
	}
	panel("Figure 9: items examined until ALL relevant tuples found", "", study.CostAll)
	panel("Figure 10: relevant tuples found", "(paper: 3-5x more with cost-based than no-cost)", study.Relevant)
	panel("Figure 11: normalized cost (items per relevant tuple)",
		"(paper: 5-10 items per relevant tuple with cost-based)", study.Normalized)
	panel("Figure 12: items examined until FIRST relevant tuple", "", study.CostOne)

	fmt.Fprintln(out, "\n-- Table 3: cost-based vs no categorization --")
	rows = rows[:0]
	for _, row := range experiments.Table3(study) {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Task),
			fmt.Sprintf("%.3f", row.CostBasedNormCost),
			fmt.Sprintf("%d", row.NoCategorization),
		})
	}
	must(render.Table(out, []string{"Task", "Cost-based (norm.)", "No categorization"}, rows))

	fmt.Fprintln(out, "\n-- Table 4: post-study survey --")
	rows = rows[:0]
	for _, tech := range experiments.Techniques() {
		rows = append(rows, []string{tech.String(), fmt.Sprintf("%d", study.Votes[tech])})
	}
	rows = append(rows, []string{"Did not respond", fmt.Sprintf("%d", study.NoResponse)})
	must(render.Table(out, []string{"Technique", "#subjects that called it best"}, rows))
	fmt.Fprintln(out, "(paper: 8 cost-based, 1 attr-cost, 0 no-cost, 2 no response)")
	fmt.Fprintln(out)
}

func printTiming(out io.Writer, timing *experiments.TimingResult) {
	fmt.Fprintf(out, "-- Figure 13: categorization time vs M (over %d queries, avg result %.0f tuples) --\n",
		timing.QueriesTimed, timing.AvgResultSize)
	rows := make([][]string, 0, len(timing.Points))
	for _, p := range timing.Points {
		rows = append(rows, []string{
			fmt.Sprintf("M=%d", p.M),
			fmt.Sprintf("%.4f s", p.AvgSeconds),
			fmt.Sprintf("%.0f", p.AvgNodes),
		})
	}
	must(render.Table(out, []string{"", "Avg execution time", "Avg tree nodes"}, rows))
	fmt.Fprintln(out, "(paper: ≈1s at M=10-100 on 2004 hardware, dominated by count-table access)")
	fmt.Fprintln(out)
}

func printAblations(out io.Writer, env *experiments.Env) error {
	fmt.Fprintln(out, "-- Ablations --")
	ord, err := experiments.AblationOrdering(env, 10)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ordering (CostOne): heuristic=%.1f optimal=%.1f reversed=%.1f — %s\n",
		ord.Heuristic, ord.Optimal, ord.Reversed, ord.OrderingGapSummary())

	sp, err := experiments.AblationSplitpoints(env, 10)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "splitpoints (CostAll): goodness=%.1f equi-width=%.1f (×%.2f) equi-depth=%.1f (×%.2f)\n",
		sp.GoodnessCost, sp.EquiWidth, sp.EquiWidth/sp.GoodnessCost, sp.EquiDepth, sp.EquiDepth/sp.GoodnessCost)

	xs, err := experiments.AblationX(env, []float64{0.05, 0.2, 0.4, 0.6, 0.8}, 8)
	if err != nil {
		return err
	}
	for _, p := range xs {
		fmt.Fprintf(out, "x=%.2f: %d candidate attrs, avg cost %.1f, avg build %.1f ms\n",
			p.X, p.Candidates, p.AvgCost, 1000*p.AvgBuild)
	}

	ks, err := experiments.AblationK(env, []float64{0.5, 1, 2, 5}, 8)
	if err != nil {
		return err
	}
	for _, p := range ks {
		fmt.Fprintf(out, "K=%.1f: level-1 attr %s, avg cost %.1f, avg depth %.1f\n",
			p.K, p.Level1Attr, p.AvgCost, p.AvgDepth)
	}

	corr, err := experiments.AblationCorrelation(env, 100)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "correlation model (§5.2 refinement, %d explorations): independent r=%.3f frac=%.4f one=%.1f | conditional r=%.3f frac=%.4f one=%.1f\n",
		corr.N, corr.IndepR, corr.IndepFrac, corr.IndepOne, corr.CondR, corr.CondFrac, corr.CondOne)

	rank, err := experiments.AblationRanking(env, 100)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ranking × categorization (§2 complementarity, ONE-scenario cost, %d explorations): flat=%.1f flat+rank=%.1f tree=%.1f tree+rank=%.1f\n",
		rank.N, rank.Flat, rank.FlatRanked, rank.Tree, rank.TreeRanked)

	opt, err := experiments.AblationGreedyOptimal(env, 5, 150)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "greedy vs §5 enumerative optimum (%d down-sampled instances, %d trees): avg ratio %.3f, worst %.3f\n",
		opt.Instances, opt.TreesTried, opt.AvgRatio, opt.WorstRatio)
	return nil
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}
