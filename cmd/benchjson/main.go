// Command benchjson converts `go test -bench` text output into a JSON
// record. It reads the benchmark text from stdin, aggregates repeated
// -count runs per benchmark (mean and minimum), and optionally joins a
// baseline run to compute speedup and allocation-reduction ratios — the
// format BENCH_categorize.json records.
//
// Usage:
//
//	go test -bench=. -benchmem -count=5 ./... | benchjson [-baseline old.txt] [-o out.json]
//
// A second mode compares two already-written JSON documents benchmark by
// benchmark, printing per-benchmark speedup ratios (old mean ns / new mean
// ns); with -o, the new document is rewritten with its note set to the diff
// summary — the provenance line BENCH_shard.json carries:
//
//	benchjson -diff [-o new.json] old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark result line.
type sample struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// Result aggregates all -count runs of one benchmark.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`     // mean
	MinNsPerOp  float64 `json:"min_ns_per_op"` // best run
	BytesPerOp  float64 `json:"bytes_per_op"`  // mean
	AllocsPerOp float64 `json:"allocs_per_op"` // mean

	// Joined from -baseline when present.
	Baseline    *Result `json:"baseline,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`      // baseline mean ns / mean ns
	AllocsRatio float64 `json:"allocs_ratio,omitempty"` // baseline allocs / allocs
	BytesRatio  float64 `json:"bytes_ratio,omitempty"`  // baseline bytes / bytes
}

// report is the top-level JSON document.
type report struct {
	Note       string   `json:"note,omitempty"`
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        []string `json:"packages,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkCategorize/rows=4000-4  955  1350538 ns/op  772548 B/op  756 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "bench text of the run to compare against")
		outPath      = flag.String("o", "", "write JSON here instead of stdout")
		note         = flag.String("note", "", "free-form annotation stored in the document")
		diffMode     = flag.Bool("diff", false, "compare two JSON documents: benchjson -diff old.json new.json")
	)
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two arguments: old.json new.json"))
		}
		diff(flag.Arg(0), flag.Arg(1), *outPath)
		return
	}

	cur, hdr := parse(os.Stdin)
	doc := report{Note: *note, GoOS: hdr["goos"], GoArch: hdr["goarch"], CPU: hdr["cpu"], Pkg: hdr.packages()}

	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fatal(err)
		}
		base, _ := parse(f)
		f.Close()
		join(cur, base)
	}

	for _, name := range sortedNames(cur) {
		doc.Benchmarks = append(doc.Benchmarks, *cur[name])
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if *outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fatal(err)
	}
}

// diff loads two benchjson documents, prints per-benchmark speedup ratios
// (oldDoc mean ns / newDoc mean ns, >1 = the new run is faster) for every
// benchmark present in both, and — when outPath is set — rewrites the new
// document with its note set to the one-line diff summary.
func diff(oldPath, newPath, outPath string) {
	oldDoc, err := loadReport(oldPath)
	if err != nil {
		fatal(err)
	}
	newDoc, err := loadReport(newPath)
	if err != nil {
		fatal(err)
	}
	oldBy := map[string]Result{}
	for _, r := range oldDoc.Benchmarks {
		oldBy[r.Name] = r
	}
	var lines []string
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, r := range newDoc.Benchmarks {
		b, ok := oldBy[r.Name]
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		ratio := round2(b.NsPerOp / r.NsPerOp)
		fmt.Printf("%-60s %14.0f %14.0f %7.2fx\n", r.Name, b.NsPerOp, r.NsPerOp, ratio)
		lines = append(lines, fmt.Sprintf("%s %.2fx", r.Name, ratio))
	}
	if len(lines) == 0 {
		fatal(fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath))
	}
	if outPath == "" {
		return
	}
	newDoc.Note = fmt.Sprintf("speedup vs %s (old ns / new ns): %s", oldPath, strings.Join(lines, ", "))
	out, err := json.MarshalIndent(newDoc, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fatal(err)
	}
}

func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc report
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// header collects the goos/goarch/pkg/cpu lines go test prints before the
// benchmark results.
type header map[string]string

func (h header) packages() []string {
	if h["pkg"] == "" {
		return nil
	}
	return strings.Fields(h["pkg"])
}

// parse reads bench text and aggregates per benchmark name.
func parse(r io.Reader) (map[string]*Result, header) {
	type agg struct {
		samples []sample
	}
	aggs := map[string]*agg{}
	hdr := header{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, k+": "); ok {
				if k == "pkg" && hdr[k] != "" {
					v = hdr[k] + " " + v // multiple packages in one run
				}
				hdr[k] = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		s := sample{NsPerOp: num(m[2]), BytesPerOp: num(m[3]), AllocsPerOp: num(m[4])}
		a := aggs[m[1]]
		if a == nil {
			a = &agg{}
			aggs[m[1]] = a
		}
		a.samples = append(a.samples, s)
	}
	results := map[string]*Result{}
	for name, a := range aggs {
		r := &Result{Name: name, Runs: len(a.samples), MinNsPerOp: a.samples[0].NsPerOp}
		for _, s := range a.samples {
			r.NsPerOp += s.NsPerOp
			r.BytesPerOp += s.BytesPerOp
			r.AllocsPerOp += s.AllocsPerOp
			if s.NsPerOp < r.MinNsPerOp {
				r.MinNsPerOp = s.NsPerOp
			}
		}
		n := float64(len(a.samples))
		r.NsPerOp = round(r.NsPerOp / n)
		r.BytesPerOp = round(r.BytesPerOp / n)
		r.AllocsPerOp = round(r.AllocsPerOp / n)
		results[name] = r
	}
	return results, hdr
}

// join attaches baseline results and ratios to the current ones.
func join(cur, base map[string]*Result) {
	for name, r := range cur {
		b, ok := base[name]
		if !ok {
			continue
		}
		r.Baseline = b
		if r.NsPerOp > 0 {
			r.Speedup = round2(b.NsPerOp / r.NsPerOp)
		}
		if r.AllocsPerOp > 0 {
			r.AllocsRatio = round2(b.AllocsPerOp / r.AllocsPerOp)
		}
		if r.BytesPerOp > 0 {
			r.BytesRatio = round2(b.BytesPerOp / r.BytesPerOp)
		}
	}
}

func sortedNames(m map[string]*Result) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func num(s string) float64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0
	}
	return v
}

func round(v float64) float64  { return float64(int64(v + 0.5)) }
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
