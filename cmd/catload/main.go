// Command catload drives the categorization HTTP service under load and
// reports latency quantiles split by cache temperature — the measurement
// harness behind BENCH_serve.json.
//
// Two modes:
//
//	catload -url http://host:8080 …        load an external catserve
//	catload -inproc …                      spin cached + uncached servers
//	                                       in-process and compare them
//
// Workers are closed-loop by default (each issues its next request when the
// previous one returns); -rate R switches to an open loop that dispatches R
// requests per second regardless of completions, the shape that exposes
// queueing collapse. With -retries N a shed request (503 from admission
// control or draining) is retried up to N times with capped exponential
// backoff plus jitter, honoring the server's Retry-After hint — the polite
// client the shed path is designed for; the summary reports how many sheds
// were observed and how many requests recovered. Every response's X-Cache header classifies the sample
// as cold (miss: selection + categorization ran) or warm (hit: served from
// the tree cache), so one run yields both distributions.
//
// With -bench the summary is also emitted as `go test -bench`-style lines
// (BenchmarkCatload/<label>/<metric>), which cmd/benchjson folds into a
// JSON record — see `make servebench`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	var (
		url     = flag.String("url", "", "base URL of a running catserve (mutually exclusive with -inproc)")
		inproc  = flag.Bool("inproc", false, "spin cached and uncached servers in-process and load both")
		rows    = flag.Int("rows", 20000, "dataset size for -inproc")
		queries = flag.Int("queries", 10000, "workload size for -inproc")
		seed    = flag.Int64("seed", 1, "generation seed")

		workers = flag.Int("c", 8, "concurrent clients (closed loop)")
		total   = flag.Int("n", 400, "total requests per target")
		rate    = flag.Float64("rate", 0, "open-loop dispatch rate in req/s (0 = closed loop)")
		retries = flag.Int("retries", 0, "retry attempts per request for shed (503) responses, with capped exponential backoff honoring Retry-After")
		mixSize = flag.Int("mix", 16, "distinct queries cycled through the load")
		tech    = flag.String("technique", "", "categorization technique (empty = server default)")
		depth   = flag.Int("maxdepth", 3, "tree depth bound sent with each request")

		cacheEntries = flag.Int("cache-entries", 256, "tree cache entry bound for the -inproc cached server")
		cacheMB      = flag.Int64("cache-mb", 64, "tree cache byte bound in MiB for the -inproc cached server")
		shards       = flag.Int("shards", 0, "shard-parallel fan-out for the -inproc servers (0 = GOMAXPROCS, 1 = off)")

		warmbench  = flag.Bool("warmbench", false, "run the 3-phase learn-storm warming benchmark in-process (see cmd/catload/warmbench.go)")
		learnEvery = flag.Int("learn-every", 25, "warmbench: learn a batch every this many requests")
		warmTopK   = flag.Int("warm-topk", 16, "warmbench: pre-warm this many top signatures in the storm-warm phase")
		warmBudget = flag.Duration("warm-budget", 0, "warmbench: wall budget per warming build (0 = 2s default)")
		think      = flag.Duration("think", time.Millisecond, "warmbench: client think time between requests (excluded from latencies)")

		bench = flag.Bool("bench", false, "also print go-bench-format lines for cmd/benchjson")
	)
	flag.Parse()

	if *warmbench {
		runWarmbench(warmbenchConfig{
			rows: *rows, queries: *queries, seed: *seed,
			mix:   queryMix(*mixSize, *seed),
			total: *total, learnEvery: *learnEvery,
			topK: *warmTopK, budget: *warmBudget, think: *think,
			cacheEntries: *cacheEntries, cacheBytes: *cacheMB << 20,
			shards: *shards,
		}, *bench)
		return
	}

	if (*url == "") == !*inproc {
		log.Fatal("catload: exactly one of -url or -inproc is required")
	}

	mix := queryMix(*mixSize, *seed)
	cfg := loadConfig{
		workers: *workers, total: *total, rate: *rate, retries: *retries,
		mix: mix, technique: *tech, maxDepth: *depth,
	}

	if *url != "" {
		res := runLoad(*url, cfg)
		res.print(os.Stdout, "target")
		if *bench {
			res.printBench(os.Stdout, "target")
		}
		return
	}

	// In-process comparison: same dataset and workload, one server with the
	// tree cache and one without.
	build := func(entries int, bytes int64) *httptest.Server {
		sys, err := repro.NewSystem(repro.DemoDataset(*rows, *seed), repro.Config{
			WorkloadSQL:      repro.DemoWorkloadSQL(*queries, *seed+1),
			Intervals:        repro.DemoIntervals(),
			Shards:           *shards,
			TreeCacheEntries: entries,
			TreeCacheBytes:   bytes,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := server.New(server.Config{System: sys, MaxDepth: 6, MaxChildren: 200})
		if err != nil {
			log.Fatal(err)
		}
		return httptest.NewServer(srv.Handler())
	}

	fmt.Printf("catload: inproc rows=%d workload=%d mix=%d n=%d c=%d\n",
		*rows, *queries, len(mix), *total, *workers)

	uncachedSrv := build(0, 0)
	uncached := runLoad(uncachedSrv.URL, cfg)
	uncachedSrv.Close()
	uncached.print(os.Stdout, "uncached")

	cachedSrv := build(*cacheEntries, *cacheMB<<20)
	cached := runLoad(cachedSrv.URL, cfg)
	cachedSrv.Close()
	cached.print(os.Stdout, "cached")

	if cu, cc := uncached.throughput(), cached.throughput(); cu > 0 {
		fmt.Printf("throughput: cached %.1f rps vs uncached %.1f rps (%.2fx)\n", cc, cu, cc/cu)
	}
	if cold, warm := quantile(cached.cold, 0.50), quantile(cached.warm, 0.50); warm > 0 {
		fmt.Printf("cached p50: cold %s vs warm %s (%.1fx)\n", cold, warm, float64(cold)/float64(warm))
	}

	if *bench {
		uncached.printBench(os.Stdout, "uncached")
		cached.printBench(os.Stdout, "cached")
	}
}

// queryMix builds distinct queries from the demo workload generator, so the
// load's shape matches the mined workload's distribution.
func queryMix(n int, seed int64) []string {
	seen := make(map[string]bool)
	var mix []string
	// Over-generate: the workload repeats popular queries by design.
	for _, sql := range repro.DemoWorkloadSQL(n*20, seed+2) {
		if !seen[sql] {
			seen[sql] = true
			mix = append(mix, sql)
			if len(mix) == n {
				break
			}
		}
	}
	if len(mix) == 0 {
		log.Fatal("catload: empty query mix")
	}
	return mix
}

type loadConfig struct {
	workers   int
	total     int
	rate      float64
	retries   int
	mix       []string
	technique string
	maxDepth  int
}

// loadResult holds one target's samples split by cache temperature.
type loadResult struct {
	cold, warm []time.Duration
	errors     int
	wall       time.Duration
	// shed counts 503 responses observed (including ones later recovered by
	// retry); recovered counts requests that succeeded after ≥1 shed.
	shed, recovered int
}

func (r *loadResult) requests() int { return len(r.cold) + len(r.warm) }

func (r *loadResult) throughput() float64 {
	if r.wall <= 0 {
		return 0
	}
	return float64(r.requests()) / r.wall.Seconds()
}

func (r *loadResult) all() []time.Duration {
	out := make([]time.Duration, 0, r.requests())
	out = append(out, r.cold...)
	out = append(out, r.warm...)
	return out
}

// runLoad fires cfg.total requests at url and collects per-request latency.
func runLoad(url string, cfg loadConfig) *loadResult {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.workers * 2,
		MaxIdleConnsPerHost: cfg.workers * 2,
	}}

	type sample struct {
		lat   time.Duration
		warm  bool
		err   bool
		sheds int
	}
	samples := make(chan sample, cfg.total)

	body := func(i int) []byte {
		req := map[string]any{"sql": cfg.mix[i%len(cfg.mix)], "maxDepth": cfg.maxDepth}
		if cfg.technique != "" {
			req["technique"] = cfg.technique
		}
		raw, _ := json.Marshal(req)
		return raw
	}

	// shoot issues one logical request, retrying shed 503s up to cfg.retries
	// times with capped exponential backoff (plus jitter, so the retry wave
	// doesn't re-stampede the queue it just overflowed), honoring the
	// server's Retry-After as a floor. The recorded latency spans the whole
	// attempt chain — the client-observed cost of the request, backoff
	// included. Only 503 retries: anything else is not a shed.
	shoot := func(i int) sample {
		start := time.Now()
		var sheds int
		for attempt := 0; ; attempt++ {
			resp, err := client.Post(url+"/v1/query", "application/json", bytes.NewReader(body(i)))
			if err != nil {
				return sample{err: true, sheds: sheds}
			}
			_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				sheds++
				if attempt < cfg.retries {
					time.Sleep(retryBackoff(attempt, resp.Header.Get("Retry-After")))
					continue
				}
			}
			if resp.StatusCode != http.StatusOK {
				return sample{err: true, sheds: sheds}
			}
			return sample{lat: time.Since(start), warm: resp.Header.Get("X-Cache") == "hit", sheds: sheds}
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	if cfg.rate > 0 {
		// Open loop: dispatch on a fixed schedule, unbounded concurrency.
		interval := time.Duration(float64(time.Second) / cfg.rate)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := 0; i < cfg.total; i++ {
			<-tick.C
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				samples <- shoot(i)
			}(i)
		}
	} else {
		// Closed loop: cfg.workers clients, each back-to-back.
		var next atomic.Int64
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= cfg.total {
						return
					}
					samples <- shoot(i)
				}
			}()
		}
	}
	wg.Wait()
	wall := time.Since(start)
	close(samples)

	res := &loadResult{wall: wall}
	for s := range samples {
		res.shed += s.sheds
		switch {
		case s.err:
			res.errors++
		case s.warm:
			res.warm = append(res.warm, s.lat)
		default:
			res.cold = append(res.cold, s.lat)
		}
		if !s.err && s.sheds > 0 {
			res.recovered++
		}
	}
	return res
}

// retryBackoff is the wait before retry #attempt: 50ms doubling per attempt,
// capped at 2s, with up to +50% jitter, and never below the server's
// Retry-After hint (whole seconds, per the shed path's contract).
func retryBackoff(attempt int, retryAfter string) time.Duration {
	d := 50 * time.Millisecond << min(attempt, 10)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		if floor := time.Duration(secs) * time.Second; d < floor {
			d = floor
		}
	}
	return d
}

// quantile returns the q-th latency quantile (nearest-rank) of a sample set.
func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func (r *loadResult) print(w *os.File, label string) {
	fmt.Fprintf(w, "%s: %d requests in %s (%.1f rps), %d errors\n",
		label, r.requests(), r.wall.Round(time.Millisecond), r.throughput(), r.errors)
	if r.shed > 0 {
		fmt.Fprintf(w, "  shed    %d 503s observed, %d requests recovered by retry\n", r.shed, r.recovered)
	}
	line := func(name string, lats []time.Duration) {
		if len(lats) == 0 {
			return
		}
		fmt.Fprintf(w, "  %-7s n=%-5d p50=%-10s p95=%-10s p99=%s\n", name, len(lats),
			quantile(lats, 0.50), quantile(lats, 0.95), quantile(lats, 0.99))
	}
	line("overall", r.all())
	line("cold", r.cold)
	line("warm", r.warm)
}

// printBench renders the summary as go-bench lines for cmd/benchjson.
func (r *loadResult) printBench(w *os.File, label string) {
	emit := func(metric string, ns float64) {
		if ns > 0 {
			fmt.Fprintf(w, "BenchmarkCatload/%s/%s 1 %.0f ns/op\n", label, metric, ns)
		}
	}
	if tp := r.throughput(); tp > 0 {
		emit("mean_interarrival", 1e9/tp) // ns between completions: inverse throughput
	}
	emit("p50", float64(quantile(r.all(), 0.50)))
	emit("p95", float64(quantile(r.all(), 0.95)))
	emit("p99", float64(quantile(r.all(), 0.99)))
	emit("cold_p50", float64(quantile(r.cold, 0.50)))
	emit("warm_p50", float64(quantile(r.warm, 0.50)))
}
