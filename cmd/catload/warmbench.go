package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

// The warmbench mode (-warmbench) measures what predictive pre-warming buys
// under learning churn (DESIGN.md §13). It drives an AdaptiveSystem
// in-process — no HTTP, so the numbers isolate the categorization path —
// through three phases over the same query mix:
//
//	baseline     primed cache, no learning: the steady-state hit latency
//	storm-nowarm a LearnBatch every -learn-every requests, warming off:
//	             every learn staleness-bombs the cache and the foreground
//	             pays the repair (or rebuild) on its own clock
//	storm-warm   the same storm with the pre-warmer on: repairs happen in
//	             the background, the foreground mostly hits
//
// Each phase emits BenchmarkWarm/<phase>/<metric> lines for cmd/benchjson
// (see `make warmbench`), including the repaired-vs-rebuilt tree and node
// counters, so BENCH_warm.json records both the latency effect and the
// mechanism behind it.

type warmbenchConfig struct {
	rows, queries int
	seed          int64
	mix           []string
	total         int
	learnEvery    int
	topK          int
	budget        time.Duration
	think         time.Duration
	cacheEntries  int
	cacheBytes    int64
	shards        int
}

// warmbenchResult is one phase's samples split by cache disposition, plus the
// end-of-phase counter snapshots explaining where the misses went.
type warmbenchResult struct {
	label     string
	hit, miss []time.Duration
	wall      time.Duration
	repair    repro.RepairStats
	cache     repro.CacheStats
	warmer    repro.WarmerStats
}

func (r *warmbenchResult) all() []time.Duration {
	out := make([]time.Duration, 0, len(r.hit)+len(r.miss))
	out = append(out, r.hit...)
	return append(out, r.miss...)
}

func runWarmbench(cfg warmbenchConfig, bench bool) {
	fmt.Printf("warmbench: rows=%d workload=%d mix=%d n=%d learn-every=%d topk=%d think=%s\n",
		cfg.rows, cfg.queries, len(cfg.mix), cfg.total, cfg.learnEvery, cfg.topK, cfg.think)

	baseline := warmbenchPhase(cfg, "baseline", false, false)
	baseline.print(os.Stdout)
	nowarm := warmbenchPhase(cfg, "storm-nowarm", true, false)
	nowarm.print(os.Stdout)
	warmed := warmbenchPhase(cfg, "storm-warm", true, true)
	warmed.print(os.Stdout)

	base := quantile(baseline.all(), 0.50)
	if base > 0 {
		fmt.Printf("p50 vs baseline %s: storm-nowarm %.1fx, storm-warm %.1fx\n", base,
			float64(quantile(nowarm.all(), 0.50))/float64(base),
			float64(quantile(warmed.all(), 0.50))/float64(base))
	}
	if bench {
		baseline.printBench(os.Stdout)
		nowarm.printBench(os.Stdout)
		warmed.printBench(os.Stdout)
	}
}

// warmbenchPhase runs one phase against a fresh system (fresh cache, fresh
// statistics — phases must not inherit each other's warmth).
func warmbenchPhase(cfg warmbenchConfig, label string, storm, warming bool) *warmbenchResult {
	sys, err := repro.NewSystem(repro.DemoDataset(cfg.rows, cfg.seed), repro.Config{
		WorkloadSQL:      repro.DemoWorkloadSQL(cfg.queries, cfg.seed+1),
		Intervals:        repro.DemoIntervals(),
		Shards:           cfg.shards,
		TreeCacheEntries: cfg.cacheEntries,
		TreeCacheBytes:   cfg.cacheBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Adaptive()
	if err != nil {
		log.Fatal(err)
	}
	qs := make([]*repro.Query, len(cfg.mix))
	for i, sql := range cfg.mix {
		if qs[i], err = repro.ParseQuery(sql); err != nil {
			log.Fatalf("warmbench: mix query %d: %v", i, err)
		}
	}
	if warming {
		// Same technique and options as the measurement loop below, or the
		// warmed keys would never hit. No limiter: the bench wants the full
		// warming effect, not an admission-throttled sample of it.
		if w := a.StartWarmer(repro.WarmerConfig{TopK: cfg.topK, Budget: cfg.budget}); w == nil {
			log.Fatal("warmbench: warmer did not start")
		}
		defer a.StopWarmer()
	}

	ctx := context.Background()
	serve := func(q *repro.Query) (bool, time.Duration) {
		t0 := time.Now()
		out, err := a.System().ServeParsedWith(ctx, q, repro.CostBased, repro.Options{}, repro.ServePolicy{})
		if err != nil {
			log.Fatalf("warmbench %s: %v", label, err)
		}
		return out.Hit, time.Since(t0)
	}
	// Prime one uncounted pass so every phase starts from a fully warm cache;
	// the storm phases then measure churn, not cold starts.
	for _, q := range qs {
		serve(q)
	}

	res := &warmbenchResult{label: label}
	start := time.Now()
	for i := 0; i < cfg.total; i++ {
		if storm && i > 0 && i%cfg.learnEvery == 0 {
			// The learn stream repeats the mix — popular signatures stay
			// popular — which is exactly what the warmer's top-K rides on.
			if err := a.LearnBatch(cfg.mix); err != nil {
				log.Fatal(err)
			}
		}
		hit, lat := serve(qs[i%len(qs)])
		if hit {
			res.hit = append(res.hit, lat)
		} else {
			res.miss = append(res.miss, lat)
		}
		if cfg.think > 0 {
			time.Sleep(cfg.think)
		}
	}
	res.wall = time.Since(start)
	if ws, ok := a.WarmerStats(); ok {
		res.warmer = ws
	}
	a.StopWarmer()
	res.repair = a.System().RepairStats()
	res.cache = a.System().CacheStats()
	return res
}

func (r *warmbenchResult) print(w *os.File) {
	total := len(r.hit) + len(r.miss)
	fmt.Fprintf(w, "%s: %d requests in %s, %d hits (%.0f%%)\n", r.label,
		total, r.wall.Round(time.Millisecond), len(r.hit), 100*float64(len(r.hit))/float64(total))
	fmt.Fprintf(w, "  p50=%-10s p95=%-10s hit_p50=%-10s miss_p50=%s\n",
		quantile(r.all(), 0.50), quantile(r.all(), 0.95),
		quantile(r.hit, 0.50), quantile(r.miss, 0.50))
	fmt.Fprintf(w, "  repair: reused=%d repaired=%d rebuilt=%d copiedNodes=%d rebuiltNodes=%d stale=%d\n",
		r.repair.Reused, r.repair.Repaired, r.repair.Rebuilt,
		r.repair.CopiedNodes, r.repair.RebuiltNodes, r.cache.Stale)
	if r.warmer.Cycles > 0 {
		fmt.Fprintf(w, "  warmer: cycles=%d warmed=%d alreadyCached=%d errors=%d\n",
			r.warmer.Cycles, r.warmer.Warmed, r.warmer.AlreadyCached, r.warmer.Errors)
	}
}

// printBench renders the phase as go-bench lines. Latencies are honest
// ns/op; the counter metrics borrow the format (value in the ns/op slot) so
// benchjson folds everything into one document.
func (r *warmbenchResult) printBench(w *os.File) {
	emit := func(metric string, v float64) {
		if v > 0 {
			fmt.Fprintf(w, "BenchmarkWarm/%s/%s 1 %.0f ns/op\n", r.label, metric, v)
		}
	}
	emit("p50", float64(quantile(r.all(), 0.50)))
	emit("p95", float64(quantile(r.all(), 0.95)))
	emit("hit_p50", float64(quantile(r.hit, 0.50)))
	emit("miss_p50", float64(quantile(r.miss, 0.50)))
	emit("hits", float64(len(r.hit)))
	emit("misses", float64(len(r.miss)))
	emit("reused_trees", float64(r.repair.Reused))
	emit("repaired_trees", float64(r.repair.Repaired))
	emit("rebuilt_trees", float64(r.repair.Rebuilt))
	emit("copied_nodes", float64(r.repair.CopiedNodes))
	emit("rebuilt_nodes", float64(r.repair.RebuiltNodes))
	emit("warmed", float64(r.warmer.Warmed))
}
