// Command catlint runs the repository's project-specific static-analysis
// suite (internal/lint): twelve checks, each mechanizing an invariant a past
// PR broke and then fixed by hand — see DESIGN.md §11 and §16.
//
// Usage:
//
//	catlint [-format=text|json|github] [-checks a,b,c] [-list] [packages...]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 driver
// error (including an unknown -checks name). -format=github emits GitHub
// Actions ::error workflow commands so CI annotates the offending lines;
// -json is kept as an alias for -format=json. Suppress one line with
// `//lint:ignore <check> <reason>` on the offending line or the line above
// it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout (alias for -format=json)")
	format := flag.String("format", "text", "output format: text, json, or github (GitHub Actions ::error commands)")
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "catlint: unknown format %q (valid formats: text, json, github)\n", *format)
		os.Exit(2)
	}
	checks, err := lint.SelectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catlint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.DefaultConfig(), checks)

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "catlint: %v\n", err)
			os.Exit(2)
		}
	case "github":
		for _, d := range diags {
			fmt.Println(d.GitHub())
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
