// Command catlint runs the repository's project-specific static-analysis
// suite (internal/lint): ten checks, each mechanizing an invariant a past
// PR broke and then fixed by hand — see DESIGN.md §11.
//
// Usage:
//
//	catlint [-json] [-checks a,b,c] [-list] [packages...]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 driver
// error. Suppress one line with `//lint:ignore <check> <reason>` on the
// offending line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Parse()

	checks := lint.Checks()
	if *list {
		for _, c := range checks {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}
	if *checksFlag != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*checksFlag, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Check
		for _, c := range checks {
			if keep[c.Name] {
				selected = append(selected, c)
				delete(keep, c.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "catlint: unknown check %q (try -list)\n", name)
			os.Exit(2)
		}
		checks = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.DefaultConfig(), checks)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "catlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
