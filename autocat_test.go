package repro_test

// autocat_test.go exercises the public facade exactly the way an external
// consumer would: generate data, open a system, query, categorize, explore.

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro"
)

var (
	sysOnce sync.Once
	sysVal  *repro.System
	sysErr  error
)

// demoSystem builds one shared small system for the facade tests.
func demoSystem(t *testing.T) *repro.System {
	t.Helper()
	sysOnce.Do(func() {
		rel := repro.DemoDataset(5000, 1)
		sysVal, sysErr = repro.NewSystem(rel, repro.Config{
			WorkloadSQL: repro.DemoWorkloadSQL(3000, 2),
			Intervals:   repro.DemoIntervals(),
		})
	})
	if sysErr != nil {
		t.Fatalf("NewSystem: %v", sysErr)
	}
	return sysVal
}

const homesSQL = "SELECT * FROM ListProperty WHERE neighborhood IN " +
	"('Seattle, WA','Bellevue, WA','Redmond, WA','Kirkland, WA','Issaquah, WA','Sammamish, WA'," +
	"'Renton, WA','Bothell, WA','Mercer Island, WA','Woodinville, WA') " +
	"AND price BETWEEN 200000 AND 300000"

func TestSystemQueryAndCategorize(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Len() == 0 {
		t.Fatal("the Homes query returned no rows")
	}
	tree, err := res.Categorize()
	if err != nil {
		t.Fatalf("Categorize: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	if tree.Root.Size() != res.Len() {
		t.Fatalf("root size %d != result size %d", tree.Root.Size(), res.Len())
	}
	if res.Len() > 20 && tree.Depth() == 0 {
		t.Fatal("large result not categorized")
	}
}

func TestSystemQueryParseError(t *testing.T) {
	sys := demoSystem(t)
	if _, err := sys.Query("DROP TABLE ListProperty"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := repro.NewSystem(nil, repro.Config{}); err == nil {
		t.Fatal("nil relation should error")
	}
	rel := repro.DemoDataset(10, 1)
	if _, err := repro.NewSystem(rel, repro.Config{}); err == nil {
		t.Fatal("config without workload should error")
	}
	if _, err := repro.NewSystem(rel, repro.Config{WorkloadSQL: []string{"not sql"}}); err == nil {
		t.Fatal("malformed workload should error")
	}
}

func TestNewSystemFromReader(t *testing.T) {
	rel := repro.DemoDataset(100, 1)
	log := strings.Join([]string{
		"SELECT * FROM ListProperty WHERE price BETWEEN 100000 AND 200000",
		"garbage line",
		"SELECT * FROM ListProperty WHERE bedroomcount >= 3",
	}, "\n")
	sys, err := repro.NewSystem(rel, repro.Config{WorkloadReader: strings.NewReader(log)})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if sys.Stats().N() != 2 {
		t.Fatalf("mined %d queries; want 2 (garbage skipped)", sys.Stats().N())
	}
}

func TestBrowse(t *testing.T) {
	sys := demoSystem(t)
	res := sys.Browse()
	if res.Len() != sys.Relation().Len() {
		t.Fatalf("Browse len %d != relation len %d", res.Len(), sys.Relation().Len())
	}
	tree, err := res.Categorize()
	if err != nil {
		t.Fatalf("Categorize(browse): %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCategorizeWithTechniques(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]float64{}
	for _, tech := range []repro.Technique{repro.CostBased, repro.AttrCost, repro.NoCost} {
		tree, err := res.CategorizeWith(tech, repro.Options{M: 20})
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		costs[tech.String()] = repro.EstimateCostAll(tree)
	}
	if costs["Cost-based"] > costs["No cost"]+1e-9 {
		t.Errorf("cost-based (%v) should not exceed no-cost (%v)", costs["Cost-based"], costs["No cost"])
	}
	if _, err := res.CategorizeWith(repro.Technique(42), repro.Options{}); err == nil {
		t.Fatal("unknown technique should error")
	}
}

func TestEstimateAndSimulate(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Categorize()
	if err != nil {
		t.Fatal(err)
	}
	estAll := repro.EstimateCostAll(tree)
	estOne := repro.EstimateCostOne(tree, 0.5)
	if estAll <= 0 || estOne <= 0 {
		t.Fatalf("estimates: all=%v one=%v", estAll, estOne)
	}
	if estOne > estAll {
		t.Errorf("ONE estimate (%v) should not exceed ALL estimate (%v)", estOne, estAll)
	}
	intentQ, err := repro.ParseQuery("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 225000 AND 250000")
	if err != nil {
		t.Fatal(err)
	}
	in := &repro.Intent{Query: intentQ}
	all := repro.SimulateAll(tree, in)
	one := repro.SimulateOne(tree, in)
	if all.RelevantFound != all.RelevantTotal {
		t.Errorf("deterministic ALL found %d of %d", all.RelevantFound, all.RelevantTotal)
	}
	if all.RelevantTotal > 0 && !one.Found {
		t.Error("ONE exploration failed to find an existing relevant tuple")
	}
	if one.TuplesExamined > all.TuplesExamined {
		t.Error("ONE examined more tuples than ALL")
	}
}

func TestRenderTreeFacade(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Categorize()
	if err != nil {
		t.Fatal(err)
	}
	out := repro.RenderTree(tree, repro.RenderOptions{MaxDepth: 1, MaxChildren: 3})
	if !strings.HasPrefix(out, "ALL (") {
		t.Fatalf("render missing root: %q", out[:min(60, len(out))])
	}
}

func TestStatsSaveLoadFacade(t *testing.T) {
	sys := demoSystem(t)
	var buf bytes.Buffer
	if err := repro.SaveStats(sys.Stats(), &buf); err != nil {
		t.Fatalf("SaveStats: %v", err)
	}
	loaded, err := repro.LoadStats(&buf)
	if err != nil {
		t.Fatalf("LoadStats: %v", err)
	}
	rel := sys.Relation()
	sys2, err := repro.NewSystem(rel, repro.Config{Stats: loaded})
	if err != nil {
		t.Fatalf("NewSystem(Stats): %v", err)
	}
	res, err := sys2.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Categorize()
	if err != nil {
		t.Fatal(err)
	}
	// Same stats must give the same tree structure.
	orig, _ := demoSystem(t).QueryParsed(res.Query).Categorize()
	if repro.EstimateCostAll(tree) != repro.EstimateCostAll(orig) {
		t.Error("tree built from persisted stats differs from original")
	}
}

func TestBuildCustomRelation(t *testing.T) {
	schema, err := repro.NewSchema(
		repro.Attribute{Name: "category", Type: repro.Categorical},
		repro.Attribute{Name: "price", Type: repro.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	rel := repro.NewRelation("Products", schema)
	for i := 0; i < 100; i++ {
		cat := "books"
		if i%3 == 0 {
			cat = "music"
		}
		rel.MustAppend(repro.Tuple{
			{Str: cat},
			{Num: float64(5 + i%40)},
		})
	}
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: []string{
			"SELECT * FROM Products WHERE category IN ('books')",
			"SELECT * FROM Products WHERE category IN ('music') AND price BETWEEN 10 AND 20",
			"SELECT * FROM Products WHERE price <= 25",
		},
		DefaultInterval: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sys.Browse().CategorizeOpts(repro.Options{M: 10, X: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() == 0 {
		t.Fatal("custom-domain relation not categorized")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPersonalize(t *testing.T) {
	sys := demoSystem(t)
	history := []string{
		"SELECT * FROM ListProperty WHERE yearbuilt <= 1940",
		"SELECT * FROM ListProperty WHERE yearbuilt BETWEEN 1900 AND 1950",
	}
	personal, err := sys.Personalize(history, 2000)
	if err != nil {
		t.Fatalf("Personalize: %v", err)
	}
	if personal.Stats().UsageFraction("yearbuilt") <= sys.Stats().UsageFraction("yearbuilt") {
		t.Error("personal history should raise yearbuilt usage")
	}
	// The base system is unchanged.
	if sys.Stats().N() == personal.Stats().N() {
		t.Error("personalized stats should include the repeated history")
	}
	if _, err := sys.Personalize([]string{"not sql"}, 1); err == nil {
		t.Error("malformed history should error")
	}
}

func TestPersonalizeRequiresRawWorkload(t *testing.T) {
	sys := demoSystem(t)
	var buf bytes.Buffer
	if err := repro.SaveStats(sys.Stats(), &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := repro.LoadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	statsOnly, err := repro.NewSystem(sys.Relation(), repro.Config{Stats: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := statsOnly.Personalize([]string{"SELECT * FROM ListProperty WHERE price >= 1"}, 1); err == nil {
		t.Fatal("stats-only system should refuse Personalize")
	}
}

func TestCorrelationsConfig(t *testing.T) {
	rel := repro.DemoDataset(3000, 1)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL:  repro.DemoWorkloadSQL(2000, 2),
		Intervals:    repro.DemoIntervals(),
		Correlations: true,
	})
	if err != nil {
		t.Fatalf("NewSystem(Correlations): %v", err)
	}
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []repro.Technique{repro.CostBased, repro.NoCost} {
		tree, err := res.CategorizeWith(tech, repro.Options{M: 20})
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
	}
	// Stats-only + Correlations must be rejected.
	var buf bytes.Buffer
	if err := repro.SaveStats(sys.Stats(), &buf); err != nil {
		t.Fatal(err)
	}
	loaded, _ := repro.LoadStats(&buf)
	if _, err := repro.NewSystem(rel, repro.Config{Stats: loaded, Correlations: true}); err == nil {
		t.Fatal("Correlations with precomputed Stats should error")
	}
}

func TestRefineQueryFacade(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Categorize()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Skip("trivial tree")
	}
	refined, err := tree.RefineQuery(res.Query, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	res2 := sys.QueryParsed(refined)
	if res2.Len() != tree.Root.Children[0].Size() {
		t.Fatalf("refined result %d != category size %d", res2.Len(), tree.Root.Children[0].Size())
	}
}

func TestFacadeTreePersistence(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Categorize()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.SaveTree(tree, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := repro.LoadTree(&buf, sys.Relation())
	if err != nil {
		t.Fatal(err)
	}
	if repro.EstimateCostAll(loaded) != repro.EstimateCostAll(tree) {
		t.Fatal("loaded tree cost differs")
	}
}

func TestFacadeDOTAndFew(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Categorize()
	if err != nil {
		t.Fatal(err)
	}
	dot := repro.RenderDOT(tree, repro.DOTOptions{MaxDepth: 1})
	if !strings.HasPrefix(dot, "digraph categorization {") {
		t.Fatalf("DOT output malformed: %q", dot[:min(40, len(dot))])
	}
	q, err := repro.ParseQuery("SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA')")
	if err != nil {
		t.Fatal(err)
	}
	in := &repro.Intent{Query: q}
	few := repro.SimulateFew(tree, in, 3)
	one := repro.SimulateOne(tree, in)
	all := repro.SimulateAll(tree, in)
	if few.RelevantFound > 3 {
		t.Fatalf("Few(3) found %d", few.RelevantFound)
	}
	if few.Cost(1) < one.Cost(1) || few.Cost(1) > all.Cost(1) {
		t.Fatalf("Few cost %v outside [One %v, All %v]", few.Cost(1), one.Cost(1), all.Cost(1))
	}
}

func TestFacadeSession(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.Query(homesSQL)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Categorize()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Skip("trivial tree")
	}
	s := repro.NewSession(tree)
	labels, err := s.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(tree.Root.Children) {
		t.Fatalf("labels = %d; want %d", len(labels), len(tree.Root.Children))
	}
	rows, err := s.ShowTuples([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRelevant(rows[0]); err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if sum.RelevantFound != 1 || sum.LabelsExamined != len(labels) || sum.TuplesExamined != len(rows) {
		t.Fatalf("summary = %+v", sum)
	}
}
