package repro

import (
	"repro/internal/relation/durable"
)

// The crash-consistent segment store (DESIGN.md §15): sealed segments spill
// to checksummed per-segment files, the active tail is protected by an
// append-only WAL, and a generation-numbered manifest is replaced atomically.
// A System built over a durable store serves the store's surviving rows —
// when recovery quarantined corrupt segments, the system runs degraded
// (StorageDegraded) and the server reports it via healthz's "durability"
// block and an X-Degraded: storage response header.

type (
	// DurableStore is an on-disk, crash-consistent segment store the relation
	// can spill to and be recovered from.
	DurableStore = durable.Store
	// DurableOptions configures Create/Open of a DurableStore.
	DurableOptions = durable.Options
	// DurabilityStats is the durability snapshot behind healthz.
	DurabilityStats = durable.Stats
	// Quarantine describes one segment recovery took out of service.
	Quarantine = durable.Quarantine
	// SyncPolicy says when the store fsyncs acknowledged appends.
	SyncPolicy = durable.SyncPolicy
)

// Sync policies: fsync every append, every batch, or only on structural
// writes (seal, manifest, close).
const (
	SyncAlways = durable.SyncAlways
	SyncBatch  = durable.SyncBatch
	SyncNone   = durable.SyncNone
)

// CreateDurable initializes a new durable store in dir (which must not
// already hold one).
func CreateDurable(dir string, schema *Schema, opts DurableOptions) (*DurableStore, error) {
	return durable.Create(dir, schema, opts)
}

// OpenDurable recovers the store in dir: the WAL is replayed to the first
// torn record, segment checksums are verified lazily on first use, and
// corrupt segments are quarantined rather than refusing to start.
func OpenDurable(dir string, opts DurableOptions) (*DurableStore, error) {
	return durable.Open(dir, opts)
}

// IsDurableNotExist reports whether err (from OpenDurable) means dir holds
// no store — the caller should CreateDurable and seed it.
func IsDurableNotExist(err error) bool { return durable.IsNotExist(err) }

// ParseSyncPolicy parses "always", "batch" (the default), or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return durable.ParseSyncPolicy(s) }

// DurabilityStats returns the durable store's counters and quarantine state.
// ok is false when the system is purely in-memory (no Config.Durable).
func (s *System) DurabilityStats() (DurabilityStats, bool) {
	if s.dur == nil {
		return DurabilityStats{}, false
	}
	return s.dur.Stats(), true
}

// StorageDegraded reports whether the backing durable store quarantined any
// segment — the system is serving the surviving rows, not the full dataset.
// Always false for purely in-memory systems.
func (s *System) StorageDegraded() bool {
	return s.dur != nil && s.dur.Degraded()
}

// DurableStore returns the backing store, or nil for in-memory systems.
func (s *System) DurableStore() *DurableStore { return s.dur }
