// Package repro is an implementation of "Automatic Categorization of Query
// Results" (Chakrabarti, Chaudhuri, Hwang — SIGMOD 2004): it dynamically
// builds a labeled, hierarchical category tree over the result set of a SQL
// query, choosing categorizing attributes and partitionings that minimize an
// analytical estimate of the information overload a user faces while
// exploring the results. The estimate is driven by a workload of past
// queries — no domain expert input, no a-priori taxonomy.
//
// # Quick start
//
//	rel := repro.DemoDataset(20000, 1)                  // or build your own Relation
//	sys, err := repro.NewSystem(rel, repro.Config{
//		WorkloadSQL: repro.DemoWorkloadSQL(10000, 2),
//	})
//	res, err := sys.Query("SELECT * FROM ListProperty WHERE " +
//		"neighborhood IN ('Seattle, WA','Bellevue, WA') AND price BETWEEN 200000 AND 300000")
//	tree, err := res.Categorize()
//	fmt.Print(repro.RenderTree(tree, repro.RenderOptions{MaxDepth: 2}))
//
// The facade re-exports (as aliases) the types of the internal packages so
// callers never import repro/internal/... directly.
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/category"
	"repro/internal/datagen"
	"repro/internal/explore"
	"repro/internal/ranking"
	"repro/internal/relation"
	"repro/internal/render"
	"repro/internal/session"
	"repro/internal/sqlparse"
	"repro/internal/treecache"
	"repro/internal/workload"
)

// Re-exported core types. Aliases keep the public surface in one import path
// while the implementation stays in focused internal packages.
type (
	// Relation is an in-memory typed table; the result sets being
	// categorized and the base data both use it.
	Relation = relation.Relation
	// Schema describes a Relation's attributes.
	Schema = relation.Schema
	// Attribute is one column: a name and a Type.
	Attribute = relation.Attribute
	// Tuple is one row of a Relation.
	Tuple = relation.Tuple
	// Type distinguishes Categorical from Numeric attributes.
	Type = relation.Type
	// Query is a parsed SPJ selection query.
	Query = sqlparse.Query
	// Condition is one per-attribute selection condition of a Query.
	Condition = sqlparse.Condition
	// Workload is an ordered log of past queries.
	Workload = workload.Workload
	// WorkloadStats holds the preprocessed count tables (§4.2, §5.1).
	WorkloadStats = workload.Stats
	// Tree is a hierarchical categorization of a result set.
	Tree = category.Tree
	// Node is one category of a Tree.
	Node = category.Node
	// Label is a category's describing predicate.
	Label = category.Label
	// Options tunes the categorizer (M, K, x, bucket limits…).
	Options = category.Options
	// Technique selects among the paper's categorization techniques.
	Technique = category.Technique
	// Intent is a simulated user's information need plus noise.
	Intent = explore.Intent
	// Outcome reports what a simulated exploration examined and found.
	Outcome = explore.Outcome
	// RenderOptions controls text rendering of trees.
	RenderOptions = render.TreeOptions
	// DOTOptions controls Graphviz rendering of trees.
	DOTOptions = render.DOTOptions
	// Ranker scores tuples by workload popularity (the complementary
	// ranking technique of §2).
	Ranker = ranking.Ranker
	// ExploreSession is a stateful treeview exploration recording the §6.3
	// operation log with running item accounting.
	ExploreSession = session.Session
	// SessionSummary is the running measurement of an ExploreSession.
	SessionSummary = session.Summary
)

// Attribute type constants.
const (
	Categorical = relation.Categorical
	Numeric     = relation.Numeric
)

// Categorization techniques (§6.1).
const (
	CostBased = category.CostBased
	AttrCost  = category.AttrCost
	NoCost    = category.NoCost
)

// Label kinds.
const (
	LabelAll      = category.LabelAll
	LabelValue    = category.LabelValue
	LabelValueSet = category.LabelValueSet
	LabelRange    = category.LabelRange
)

// NewSchema builds a schema; attribute names must be unique
// (case-insensitive).
func NewSchema(attrs ...Attribute) (*Schema, error) { return relation.NewSchema(attrs...) }

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema *Schema) *Relation { return relation.New(name, schema) }

// ParseQuery parses one SQL SELECT in the supported SPJ dialect.
func ParseQuery(sql string) (*Query, error) { return sqlparse.Parse(sql) }

// Config configures a System.
type Config struct {
	// WorkloadSQL is the log of past query strings to mine. Exactly one of
	// WorkloadSQL, WorkloadReader, or Stats must be provided.
	WorkloadSQL []string
	// WorkloadReader streams a query log, one statement per line; malformed
	// lines are skipped.
	WorkloadReader io.Reader
	// Stats supplies already-preprocessed count tables (e.g. loaded via
	// LoadStats), skipping workload mining.
	Stats *WorkloadStats
	// Intervals sets the splitpoint separation interval per numeric
	// attribute (Figure 5); defaults to datagen.Intervals() when the
	// relation is the demo dataset shape, else 1.
	Intervals map[string]float64
	// DefaultInterval is used for numeric attributes missing from Intervals.
	DefaultInterval float64
	// Options are the default categorizer parameters for this system's
	// queries; zero fields take the paper's defaults (M=20, K=1, x=0.4).
	Options Options
	// BuildIndexes builds secondary indexes on the relation's attributes at
	// system construction, accelerating Select for indexed conjuncts.
	// (Appending rows afterwards drops the indexes.)
	BuildIndexes bool
	// Correlations enables the path-conditional probability model (§5.2's
	// correlation refinement): exploration probabilities are estimated
	// conditioned on the category's whole root path instead of assuming
	// attribute independence. Requires WorkloadSQL or WorkloadReader (the
	// per-query conditions must be retained; precomputed Stats are not
	// enough).
	Correlations bool
	// Shards is the default shard-parallel fan-out for categorization builds
	// (DESIGN.md §12): large tree nodes are counted and filled by this many
	// concurrent span workers. It seeds Options.Shards when that is zero, so
	// per-request option sets inherit it. 0 means one shard per available
	// CPU; 1 disables sharding. The built trees are byte-identical at every
	// shard count — this is purely a latency knob.
	Shards int
	// TreeCacheEntries / TreeCacheBytes bound the serving path's memoized
	// tree cache (DESIGN.md §8): semantically identical queries (canonical
	// signature) with the same technique, options, and stats generation are
	// served the same *Tree, and concurrent identical misses collapse into
	// one categorization. Both zero disables caching. A zero bound on one
	// dimension leaves that dimension unbounded.
	TreeCacheEntries int
	TreeCacheBytes   int64
	// Durable is the crash-consistent segment store backing rel, when the
	// relation was opened from (or is being spilled to) disk (DESIGN.md §15).
	// The system does not manage its lifecycle — the caller Closes it — but
	// reports its recovery/quarantine state through DurabilityStats and
	// StorageDegraded, and the HTTP server surfaces both.
	Durable *DurableStore
}

// System ties a relation to preprocessed workload statistics and answers
// queries with categorized results. It is read-only after construction and
// safe for concurrent use.
type System struct {
	rel   *Relation
	stats *WorkloadStats
	opts  Options
	corr  *workload.CondIndex
	// wl and wcfg are retained when the system was built from a raw
	// workload, enabling Personalize; nil for Stats-only systems.
	wl   *Workload
	wcfg workload.Config
	// cache memoizes served trees (nil when disabled); gen stamps the
	// statistics snapshot this System serves, keying the cache (§8). An
	// AdaptiveSystem's snapshots share one cache at increasing generations.
	cache *treecache.Cache[served]
	gen   uint64
	// resil counts degradations and recovered panics on the serving path
	// (§10); shared across an AdaptiveSystem's snapshots, like the cache.
	resil *resilienceCounters
	// shardc counts shard-parallel build activity (§12); shared across an
	// AdaptiveSystem's snapshots like resil, fresh per Personalize.
	shardc *category.ShardCounters
	// repairc counts stale-tree revalidation outcomes (§13); shared across an
	// AdaptiveSystem's snapshots like resil, fresh per Personalize.
	repairc *repairCounters
	// dur is the durable segment store backing rel (nil for in-memory
	// systems); shared across an AdaptiveSystem's snapshots like the
	// relation itself (§15).
	dur *DurableStore
}

// NewSystem builds a System over rel, mining the configured workload into
// count tables (the paper's offline preprocessing phase).
func NewSystem(rel *Relation, cfg Config) (*System, error) {
	if rel == nil {
		return nil, fmt.Errorf("repro: nil relation")
	}
	if cfg.BuildIndexes {
		if err := rel.BuildIndex(); err != nil {
			return nil, fmt.Errorf("repro: %w", err)
		}
	}
	var cache *treecache.Cache[served]
	if cfg.TreeCacheEntries > 0 || cfg.TreeCacheBytes > 0 {
		cache = treecache.New[served](treecache.Config{
			MaxEntries: cfg.TreeCacheEntries,
			MaxBytes:   cfg.TreeCacheBytes,
		})
	}
	resil := &resilienceCounters{}
	shardc := &category.ShardCounters{}
	repairc := &repairCounters{}
	if cfg.Options.Shards == 0 {
		// System-level default flows into every build that doesn't pick its
		// own shard count (catserve -shards reaches per-request builds here).
		cfg.Options.Shards = cfg.Shards
	}
	stats := cfg.Stats
	var corr *workload.CondIndex
	if stats == nil {
		var w *Workload
		switch {
		case cfg.WorkloadSQL != nil:
			var err error
			w, err = workload.ParseStrings(cfg.WorkloadSQL)
			if err != nil {
				return nil, fmt.Errorf("repro: %w", err)
			}
		case cfg.WorkloadReader != nil:
			var err error
			w, _, err = workload.ParseLog(cfg.WorkloadReader)
			if err != nil {
				return nil, fmt.Errorf("repro: %w", err)
			}
		default:
			return nil, fmt.Errorf("repro: config must supply WorkloadSQL, WorkloadReader, or Stats")
		}
		wcfg := workload.Config{
			Table:           rel.Name,
			Intervals:       cfg.Intervals,
			DefaultInterval: cfg.DefaultInterval,
		}
		stats = workload.Preprocess(w, wcfg)
		if cfg.Correlations {
			corr = workload.NewCondIndex(w, wcfg)
		}
		return &System{rel: rel, stats: stats, opts: cfg.Options, corr: corr, wl: w, wcfg: wcfg, cache: cache, resil: resil, shardc: shardc, repairc: repairc, dur: cfg.Durable}, nil
	}
	if cfg.Correlations {
		return nil, fmt.Errorf("repro: Correlations requires the raw workload (WorkloadSQL or WorkloadReader), not precomputed Stats")
	}
	return &System{rel: rel, stats: stats, opts: cfg.Options, cache: cache, resil: resil, shardc: shardc, repairc: repairc, dur: cfg.Durable}, nil
}

// Personalize returns a new System whose workload statistics blend this
// system's query log with one user's own history, repeated weight times —
// the personalization direction the paper's footnote 4 sketches: the tree is
// still built for "the average user", but the average is pulled toward this
// user's demonstrated interests. The base system is unchanged. It errors
// when the system was built from precomputed Stats (the raw workload is
// needed) or when the history fails to parse.
func (s *System) Personalize(history []string, weight int) (*System, error) {
	if s.wl == nil {
		return nil, fmt.Errorf("repro: Personalize requires a system built from a raw workload")
	}
	personal, err := workload.ParseStrings(history)
	if err != nil {
		return nil, fmt.Errorf("repro: personal history: %w", err)
	}
	merged := workload.Merge(s.wl, personal, weight)
	out := &System{
		rel:     s.rel,
		stats:   workload.Preprocess(merged, s.wcfg),
		opts:    s.opts,
		wl:      merged,
		wcfg:    s.wcfg,
		resil:   &resilienceCounters{},
		shardc:  &category.ShardCounters{},
		repairc: &repairCounters{},
		dur:     s.dur, // same relation, same backing store
	}
	if s.cache.Enabled() {
		// The personalized statistics are a different key space; sharing the
		// base cache would serve the base user's trees. Same bounds, new cache.
		out.cache = treecache.New[served](s.cache.Bounds())
	}
	if s.corr != nil {
		out.corr = workload.NewCondIndex(merged, s.wcfg)
	}
	return out, nil
}

// Relation returns the system's base relation.
func (s *System) Relation() *Relation { return s.rel }

// Stats returns the preprocessed workload statistics.
func (s *System) Stats() *WorkloadStats { return s.stats }

// Query executes the SQL selection against the relation and returns the
// result set, ready for categorization.
func (s *System) Query(sql string) (*Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.QueryParsed(q), nil
}

// QueryParsed executes an already-parsed query.
func (s *System) QueryParsed(q *Query) *Result {
	return &Result{sys: s, Query: q, Rows: s.rel.Select(q.Predicate())}
}

// Browse returns the whole relation as a result set (the paper's browsing
// application: R is a base relation or materialized view).
func (s *System) Browse() *Result {
	return &Result{sys: s, Rows: s.rel.Select(nil)}
}

// Result is the tuple-set R a query produced, bound to its System.
type Result struct {
	sys *System
	// Query is the originating query; nil when browsing.
	Query *Query
	// Rows are the indices of the result tuples within the base relation.
	Rows []int
}

// Len returns |R|.
func (r *Result) Len() int { return len(r.Rows) }

// Relation returns the base relation the row indices refer to.
func (r *Result) Relation() *Relation { return r.sys.rel }

// Categorize builds the min-cost category tree (the paper's cost-based
// technique) with the system's default options.
func (r *Result) Categorize() (*Tree, error) {
	return r.CategorizeWith(CostBased, r.sys.opts)
}

// CategorizeOpts builds the cost-based tree with explicit options.
func (r *Result) CategorizeOpts(opts Options) (*Tree, error) {
	return r.CategorizeWith(CostBased, opts)
}

// CategorizeWith builds the tree with the chosen technique (§6.1's
// Cost-based, Attr-cost, or No-cost). The returned tree is annotated with
// exploration probabilities, so EstimateCostAll/EstimateCostOne work on it
// regardless of technique.
func (r *Result) CategorizeWith(tech Technique, opts Options) (*Tree, error) {
	return r.CategorizeCtx(context.Background(), tech, opts)
}

// CategorizeCtx is CategorizeWith honoring a request context: cancellation
// abandons the build and returns ctx's error (no partial trees). When the
// system caches trees and the result has a query, the build goes through the
// cache — hits return the shared memoized tree (treat it as immutable), and
// concurrent identical misses collapse into one computation.
func (r *Result) CategorizeCtx(ctx context.Context, tech Technique, opts Options) (*Tree, error) {
	if r.sys.cache.Enabled() && r.Query != nil {
		v, _, err := r.sys.cache.DoStale(ctx,
			r.sys.cacheKey(r.Query, tech, opts), r.sys.cacheBaseKey(r.Query, tech, opts),
			func(cctx context.Context, stale served, haveStale bool) (served, int64, bool, error) {
				if haveStale {
					if tree, ok := r.sys.repairFromStale(cctx, r.Query, stale, tech, opts); ok {
						return served{tree, DegradeNone, r.sys.stats}, treeBytes(tree) + tree.TraceBytes(), true, nil
					}
				}
				tree, err := r.sys.buildTree(cctx, r.Query, r.Rows, tech, opts)
				if err != nil {
					return served{}, 0, false, err
				}
				return served{tree, DegradeNone, r.sys.stats}, treeBytes(tree) + tree.TraceBytes(), false, nil
			})
		return v.tree, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.sys.buildTree(ctx, r.Query, r.Rows, tech, opts)
}

// Ranker builds a workload-popularity tuple ranker for this system's
// relation — the paper's complementary technique (§2): rank a flat result,
// or order the tuples within each category via RankTree.
func (s *System) Ranker() *Ranker {
	return ranking.New(s.stats, s.rel.Schema())
}

// Ranked returns the result's rows reordered by descending workload
// popularity (the ranked-list presentation).
func (r *Result) Ranked() []int {
	return r.sys.Ranker().Rank(r.sys.rel, r.Rows)
}

// RankTree reorders the tuples within every category of the tree by
// descending workload popularity; membership and structure are unchanged.
func RankTree(rk *Ranker, t *Tree) { ranking.RankTree(rk, t) }

// EstimateCostAll returns the analytical expected exploration cost of the
// ALL scenario (Eq. 1) for a tree built by this package.
func EstimateCostAll(t *Tree) float64 { return category.TreeCostAll(t) }

// EstimateCostOne returns the analytical expected cost of the ONE scenario
// (Eq. 2) with the given frac (0.5 is the uniform default).
func EstimateCostOne(t *Tree, frac float64) float64 { return category.TreeCostOne(t, frac) }

// SimulateAll replays the ALL-scenario exploration model for the intent.
func SimulateAll(t *Tree, in *Intent) Outcome { return (&explore.Explorer{K: t.K}).All(t, in) }

// SimulateOne replays the ONE-scenario exploration model for the intent.
func SimulateOne(t *Tree, in *Intent) Outcome { return (&explore.Explorer{K: t.K}).One(t, in) }

// SimulateFew replays the intermediate scenario (§3.2's "interested in
// two/few tuples"): the exploration stops once k relevant tuples are found.
func SimulateFew(t *Tree, in *Intent, k int) Outcome {
	return (&explore.Explorer{K: t.K}).Few(t, in, k)
}

// NewSession starts an interactive treeview exploration of the tree — the
// paper's §6.3 study client: Expand/Collapse/ShowTuples/MarkRelevant are
// logged and the examined-items account runs per the §3.2 models.
func NewSession(t *Tree) *ExploreSession { return session.New(t, t.K) }

// RenderTree renders the tree as indented text.
func RenderTree(t *Tree, opts RenderOptions) string { return render.TreeString(t, opts) }

// RenderDOT renders the tree as a Graphviz digraph — input to the
// visualization step the paper positions after categorization (§2).
func RenderDOT(t *Tree, opts DOTOptions) string { return render.DOTString(t, opts) }

// SaveTree persists a categorization's structure; LoadTree re-binds it to
// its relation. Useful for caching the trees of hot queries.
func SaveTree(t *Tree, w io.Writer) error { return t.Save(w) }

// LoadTree reads a tree written by SaveTree and validates it against rel.
func LoadTree(r io.Reader, rel *Relation) (*Tree, error) { return category.LoadTree(r, rel) }

// SaveStats persists preprocessed workload statistics.
func SaveStats(s *WorkloadStats, w io.Writer) error { return s.Save(w) }

// LoadStats restores statistics written by SaveStats.
func LoadStats(r io.Reader) (*WorkloadStats, error) { return workload.LoadStats(r) }

// DemoDataset generates the synthetic home-listing relation that substitutes
// for the paper's MSN House&Home table (see DESIGN.md).
func DemoDataset(rows int, seed int64) *Relation {
	return datagen.Dataset(datagen.DatasetConfig{Rows: rows, Seed: seed})
}

// DemoWorkloadSQL generates the synthetic buyer-query log that substitutes
// for the paper's 176k-query MSN workload.
func DemoWorkloadSQL(queries int, seed int64) []string {
	return datagen.WorkloadSQL(datagen.WorkloadConfig{Queries: queries, Seed: seed})
}

// DemoIntervals returns the splitpoint separation intervals matching the
// demo dataset's numeric attributes (the paper's settings).
func DemoIntervals() map[string]float64 { return datagen.Intervals() }
