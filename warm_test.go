package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/sqlparse"
)

func warmFixture(t *testing.T) *AdaptiveSystem {
	t.Helper()
	rel := DemoDataset(2000, 1)
	sys, err := NewSystem(rel, Config{
		WorkloadSQL:      DemoWorkloadSQL(1500, 2),
		Intervals:        DemoIntervals(),
		TreeCacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Adaptive()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// bareWarmer builds a Warmer without starting its loop, for tests that drive
// warmCycle synchronously.
func bareWarmer(a *AdaptiveSystem, cfg WarmerConfig) *Warmer {
	if cfg.Budget <= 0 {
		cfg.Budget = defaultWarmBudget
	}
	return &Warmer{
		a:      a,
		cfg:    cfg,
		counts: make(map[string]*warmSig),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

func mustParse(t *testing.T, sql string) *sqlparse.Query {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestWarmCycleWarmsTopSignatures drives one synchronous cycle and checks the
// hottest signatures land in the cache while colder ones do not.
func TestWarmCycleWarmsTopSignatures(t *testing.T) {
	a := warmFixture(t)
	w := bareWarmer(a, WarmerConfig{TopK: 2})

	hot := mustParse(t, "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN 200000 AND 400000")
	warm2 := mustParse(t, "SELECT * FROM ListProperty WHERE bedrooms BETWEEN 2 AND 4")
	cold := mustParse(t, "SELECT * FROM ListProperty WHERE propertytype = 'Condo'")
	w.observe([]*sqlparse.Query{hot, hot, hot, warm2, warm2, cold})

	w.warmCycle()

	sys := a.System()
	if _, ok := sys.Peek(hot, CostBased, Options{}); !ok {
		t.Errorf("hottest signature not warmed")
	}
	if _, ok := sys.Peek(warm2, CostBased, Options{}); !ok {
		t.Errorf("second signature not warmed")
	}
	if _, ok := sys.Peek(cold, CostBased, Options{}); ok {
		t.Errorf("signature outside top-K was warmed")
	}
	if s := w.snapshot(); s.Warmed != 2 || s.Cycles != 1 || s.Tracked != 3 {
		t.Errorf("stats = %+v, want warmed=2 cycles=1 tracked=3", s)
	}

	// A warmed signature served on the foreground path is a pure hit.
	out, err := sys.ServeParsedWith(context.Background(), hot, CostBased, Options{}, ServePolicy{})
	if err != nil || !out.Hit {
		t.Errorf("foreground serve after warming: hit=%v err=%v", out.Hit, err)
	}
}

// TestWarmCycleRespectsBusyLimiter pins the never-shed-foreground invariant:
// with every admission slot held (or a queue formed), warming must do
// nothing — no queueing, no shedding, just a Busy count.
func TestWarmCycleRespectsBusyLimiter(t *testing.T) {
	a := warmFixture(t)
	lim := resilience.NewLimiter(1, 4)
	release, err := lim.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	w := bareWarmer(a, WarmerConfig{TopK: 1, Limiter: lim})
	q := mustParse(t, "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')")
	w.observe([]*sqlparse.Query{q})
	w.warmCycle()

	if _, ok := a.System().Peek(q, CostBased, Options{}); ok {
		t.Errorf("warmed through a saturated limiter")
	}
	s := w.snapshot()
	if s.Busy != 1 || s.Warmed != 0 {
		t.Errorf("stats = %+v, want busy=1 warmed=0", s)
	}
	if ls := lim.Stats(); ls.QueueDepth != 0 || ls.Shed != 0 {
		t.Errorf("warming queued or shed on the limiter: %+v", ls)
	}
}

// TestWarmCycleSkipsWithinEpsilon: a second cycle with no statistics movement
// is a no-op, and drift below the epsilon threshold also is.
func TestWarmCycleSkipsWithinEpsilon(t *testing.T) {
	a := warmFixture(t)
	w := bareWarmer(a, WarmerConfig{TopK: 1, Epsilon: 0.5})
	q := mustParse(t, "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')")
	w.observe([]*sqlparse.Query{q})

	w.warmCycle()
	if s := w.snapshot(); s.Cycles != 1 || s.SkippedCycles != 0 {
		t.Fatalf("first cycle: %+v", s)
	}
	// No learn between cycles: identical snapshot, skipped.
	w.warmCycle()
	if s := w.snapshot(); s.Cycles != 1 || s.SkippedCycles != 1 {
		t.Fatalf("identical-stats cycle not skipped: %+v", s)
	}
	// One learned query against a 1500-query workload is far under a 50%
	// relative epsilon: still skipped.
	if err := a.Learn("SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA')"); err != nil {
		t.Fatal(err)
	}
	w.warmCycle()
	if s := w.snapshot(); s.Cycles != 1 || s.SkippedCycles != 2 {
		t.Fatalf("sub-epsilon drift cycle not skipped: %+v", s)
	}

	// Already-cached signatures count as AlreadyCached, not re-warmed.
	w2 := bareWarmer(a, WarmerConfig{TopK: 1})
	w2.observe([]*sqlparse.Query{q})
	w2.warmCycle()
	if s := w2.snapshot(); s.AlreadyCached+s.Warmed != 1 {
		t.Fatalf("second warmer: %+v", s)
	}
}

// TestWarmerLifecycle exercises the real background loop end to end: start,
// learn, observe the warm landing, stop.
func TestWarmerLifecycle(t *testing.T) {
	a := warmFixture(t)
	w := a.StartWarmer(WarmerConfig{TopK: 4})
	if w == nil {
		t.Fatal("StartWarmer returned nil")
	}
	if dup := a.StartWarmer(WarmerConfig{TopK: 4}); dup != nil {
		t.Fatal("second StartWarmer did not refuse")
	}
	defer a.StopWarmer()

	sql := "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN 250000 AND 450000"
	q := mustParse(t, sql)
	if err := a.Learn(sql); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := a.System().Peek(q, CostBased, Options{}); ok {
			break
		}
		if time.Now().After(deadline) {
			s, _ := a.WarmerStats()
			t.Fatalf("warmer never cached the learned signature: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s, ok := a.WarmerStats(); !ok || s.Warmed == 0 {
		t.Fatalf("warmer stats: ok=%v %+v", ok, s)
	}
	a.StopWarmer()
	if _, ok := a.WarmerStats(); ok {
		t.Fatal("stats still available after StopWarmer")
	}
	a.StopWarmer() // idempotent
	if w := a.StartWarmer(WarmerConfig{TopK: 0}); w != nil {
		t.Fatal("TopK=0 should disable warming")
	}
}
