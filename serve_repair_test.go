package repro_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro"
)

// treeFingerprint renders every structural and probabilistic detail of a tree
// into one comparable string: depth, label, subcategorizing attribute, exact
// float bits of P and Pw, and the ordered tuple-set. Two trees with equal
// fingerprints are byte-identical in everything the serving path promises.
func treeFingerprint(t *repro.Tree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "attrs=%v k=%b\n", t.LevelAttrs, t.K)
	t.Root.Walk(func(n *repro.Node, depth int) bool {
		fmt.Fprintf(&b, "%d|%s|%s|%b|%b|%v\n",
			depth, n.Label.String(), n.SubAttr, n.P, n.Pw, n.Tset)
		return true
	})
	return b.String()
}

// cachedAdaptiveFixture is adaptiveFixture plus a tree cache, the
// configuration under which serving records repair traces.
func cachedAdaptiveFixture(t *testing.T, rows, queries int) *repro.AdaptiveSystem {
	t.Helper()
	rel := repro.DemoDataset(rows, 1)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL:      repro.DemoWorkloadSQL(queries, 2),
		Intervals:        repro.DemoIntervals(),
		TreeCacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Adaptive()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestServeRepairEquivalence drives the full serving path through a learn
// step: the second serve of the same query finds the first generation's tree
// stale, repairs (or reuses) it, and must produce exactly the tree a cold
// build under the new statistics would.
func TestServeRepairEquivalence(t *testing.T) {
	a := cachedAdaptiveFixture(t, 3000, 2000)
	ctx := context.Background()
	sql := "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA','Bellevue, WA') AND price BETWEEN 200000 AND 400000"

	sys0 := a.System()
	if _, _, _, err := sys0.Serve(ctx, sql, repro.CostBased, repro.Options{}); err != nil {
		t.Fatalf("cold serve: %v", err)
	}

	learned := []string{
		"SELECT * FROM ListProperty WHERE neighborhood IN ('Redmond, WA')",
		"SELECT * FROM ListProperty WHERE price BETWEEN 300000 AND 500000",
		"SELECT * FROM ListProperty WHERE bedrooms BETWEEN 2 AND 4",
	}
	if err := a.LearnBatch(learned); err != nil {
		t.Fatalf("learn: %v", err)
	}

	sys1 := a.System()
	if sys1.Generation() == sys0.Generation() {
		t.Fatalf("learn did not bump the generation")
	}
	tree, _, hit, err := sys1.Serve(ctx, sql, repro.CostBased, repro.Options{})
	if err != nil {
		t.Fatalf("post-learn serve: %v", err)
	}
	if hit {
		t.Fatalf("post-learn serve reported a hit; the generation moved")
	}
	rs := sys1.RepairStats()
	if rs.Repaired+rs.Reused == 0 {
		t.Fatalf("stale entry was not repaired or reused: %+v", rs)
	}

	// The ground truth: a fresh cacheless system over the same statistics
	// snapshot must build the identical tree from scratch.
	fresh, err := repro.NewSystem(sys1.Relation(), repro.Config{Stats: sys1.Stats()})
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := fresh.Serve(ctx, sql, repro.CostBased, repro.Options{})
	if err != nil {
		t.Fatalf("reference rebuild: %v", err)
	}
	if got, exp := treeFingerprint(tree), treeFingerprint(want); got != exp {
		t.Errorf("repaired serve differs from cold rebuild:\nrepair:\n%s\nrebuild:\n%s", got, exp)
	}

	// And the served tree must now be cached under the new generation.
	if _, _, hit, err = sys1.Serve(ctx, sql, repro.CostBased, repro.Options{}); err != nil || !hit {
		t.Fatalf("repaired tree not cached: hit=%v err=%v", hit, err)
	}
}

// TestServeRepairAcrossGenerations chains several learns, serving between
// each: every serve must match a cold rebuild of its generation, no matter
// how many times the underlying entry has been repaired.
func TestServeRepairAcrossGenerations(t *testing.T) {
	a := cachedAdaptiveFixture(t, 2000, 1500)
	ctx := context.Background()
	sql := "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN 150000 AND 450000"

	for round := 0; round < 4; round++ {
		sys := a.System()
		tree, _, _, err := sys.Serve(ctx, sql, repro.CostBased, repro.Options{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		fresh, err := repro.NewSystem(sys.Relation(), repro.Config{Stats: sys.Stats()})
		if err != nil {
			t.Fatal(err)
		}
		want, _, _, err := fresh.Serve(ctx, sql, repro.CostBased, repro.Options{})
		if err != nil {
			t.Fatalf("round %d reference: %v", round, err)
		}
		if treeFingerprint(tree) != treeFingerprint(want) {
			t.Fatalf("round %d: served tree diverged from cold rebuild", round)
		}
		if err := a.Learn(fmt.Sprintf(
			"SELECT * FROM ListProperty WHERE price BETWEEN %d AND %d", 200000+10000*round, 300000+10000*round)); err != nil {
			t.Fatal(err)
		}
	}
	if rs := a.System().RepairStats(); rs.Repaired == 0 {
		t.Errorf("no incremental repairs across 4 generations: %+v", rs)
	}
}

// TestLearnBatchServeRace races concurrent serves against a learn publishing
// a new generation (run under -race). Every observed tree must be exactly the
// old generation's tree or the new one's — never a blend — and singleflight
// must keep the distinct computations bounded by the number of generations.
func TestLearnBatchServeRace(t *testing.T) {
	a := cachedAdaptiveFixture(t, 1500, 1000)
	ctx := context.Background()
	sql := "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA','Redmond, WA') AND price BETWEEN 150000 AND 500000"

	// Pin the old generation's tree, and precompute the new generation's on a
	// side system sharing the learned statistics.
	tree0, _, _, err := a.System().Serve(ctx, sql, repro.CostBased, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref0 := treeFingerprint(tree0)
	missesBefore := a.System().CacheStats().Misses

	learned := []string{
		"SELECT * FROM ListProperty WHERE bedrooms BETWEEN 3 AND 5",
		"SELECT * FROM ListProperty WHERE price BETWEEN 250000 AND 350000",
	}

	const servers = 8
	start := make(chan struct{})
	results := make([][]string, servers)
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < 6; j++ {
				tree, _, _, err := a.System().Serve(ctx, sql, repro.CostBased, repro.Options{})
				if err != nil {
					t.Errorf("server %d: %v", i, err)
					return
				}
				results[i] = append(results[i], treeFingerprint(tree))
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := a.LearnBatch(learned); err != nil {
			t.Errorf("learn: %v", err)
		}
	}()
	close(start)
	wg.Wait()

	sys1 := a.System()
	tree1, _, _, err := sys1.Serve(ctx, sql, repro.CostBased, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref1 := treeFingerprint(tree1)

	for i, fps := range results {
		for j, fp := range fps {
			if fp != ref0 && fp != ref1 {
				t.Fatalf("server %d serve %d observed a tree matching neither generation", i, j)
			}
		}
	}
	// Singleflight across the race: the only computations are one per
	// generation of this key (the gen-0 build happened before the snapshot).
	if misses := sys1.CacheStats().Misses - missesBefore; misses > 1 {
		t.Errorf("%d distinct computations for one query across one learn; singleflight should bound it to 1", misses)
	}
}
