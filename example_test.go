package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// exampleSystem builds a tiny, fully deterministic system: 12 homes in two
// neighborhoods, and a workload whose users filter on neighborhood and
// price (with ranges breaking at 250000).
func exampleSystem() *repro.System {
	schema, err := repro.NewSchema(
		repro.Attribute{Name: "neighborhood", Type: repro.Categorical},
		repro.Attribute{Name: "price", Type: repro.Numeric},
		repro.Attribute{Name: "bedrooms", Type: repro.Numeric},
	)
	if err != nil {
		log.Fatal(err)
	}
	rel := repro.NewRelation("Homes", schema)
	for i := 0; i < 12; i++ {
		hood := "Bellevue, WA"
		if i%3 == 0 {
			hood = "Seattle, WA"
		}
		rel.MustAppend(repro.Tuple{
			{Str: hood},
			{Num: 200000 + float64(i)*10000},
			{Num: float64(2 + i%3)},
		})
	}
	var workload []string
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			workload = append(workload,
				"SELECT * FROM Homes WHERE neighborhood IN ('Bellevue, WA') AND price BETWEEN 200000 AND 250000")
		} else {
			workload = append(workload,
				"SELECT * FROM Homes WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN 250000 AND 320000")
		}
	}
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: workload,
		Intervals:   map[string]float64{"price": 10000, "bedrooms": 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

// The basic flow: query, categorize, render.
func Example() {
	sys := exampleSystem()
	res, err := sys.Query("SELECT * FROM Homes WHERE price BETWEEN 200000 AND 320000")
	if err != nil {
		log.Fatal(err)
	}
	tree, err := res.CategorizeOpts(repro.Options{M: 4, X: 0.3, MaxBuckets: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(repro.RenderTree(tree, repro.RenderOptions{MaxDepth: 1}))
	// Output:
	// ALL (12)
	//   neighborhood: Bellevue, WA (8)
	//     … 2 subcategories
	//   neighborhood: Seattle, WA (4)
}

// Exploring a tree with a simulated user and estimating its cost.
func ExampleSimulateAll() {
	sys := exampleSystem()
	res, err := sys.Query("SELECT * FROM Homes WHERE price BETWEEN 200000 AND 320000")
	if err != nil {
		log.Fatal(err)
	}
	tree, err := res.CategorizeOpts(repro.Options{M: 4, X: 0.3, MaxBuckets: 2})
	if err != nil {
		log.Fatal(err)
	}
	interest, err := repro.ParseQuery(
		"SELECT * FROM Homes WHERE neighborhood IN ('Seattle, WA') AND price BETWEEN 250000 AND 320000")
	if err != nil {
		log.Fatal(err)
	}
	out := repro.SimulateAll(tree, &repro.Intent{Query: interest})
	fmt.Printf("examined %d labels and %d tuples, found %d of %d relevant homes\n",
		out.LabelsExamined, out.TuplesExamined, out.RelevantFound, out.RelevantTotal)
	// Output:
	// examined 2 labels and 4 tuples, found 2 of 2 relevant homes
}

// Turning an explored category back into SQL.
func ExampleTree_RefineQuery() {
	sys := exampleSystem()
	res, err := sys.Query("SELECT * FROM Homes WHERE price BETWEEN 200000 AND 320000")
	if err != nil {
		log.Fatal(err)
	}
	tree, err := res.CategorizeOpts(repro.Options{M: 4, X: 0.3, MaxBuckets: 2})
	if err != nil {
		log.Fatal(err)
	}
	refined, err := tree.RefineQuery(res.Query, []int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(refined)
	// Output:
	// SELECT * FROM Homes WHERE price BETWEEN 200000 AND 320000 AND neighborhood = 'Bellevue, WA'
}
