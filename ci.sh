#!/bin/sh
# CI pipeline: every gate a change must pass, cheapest first. Run locally as
# `make ci` or `./ci.sh`; CI systems invoke it verbatim, so the local run and
# the CI run can never drift.
set -eu

step() { printf '\n== %s ==\n' "$*"; }

step "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet"
go vet ./...

step "go build"
go build ./...

step "catlint (project-specific static analysis, DESIGN.md §11)"
go run ./cmd/catlint ./...

step "catlint self-check: seeded fixtures must fail, fixture tests must pass"
make lint-selfcheck

step "catlint perf gate: full-tree interprocedural run under 60s"
make lint-perf

step "go test"
go test ./...

step "race detector on the hot packages"
go test -race ./internal/category ./internal/relation ./internal/sqlparse \
    ./internal/treecache ./internal/server ./internal/resilience/... .

step "shard-parallel equivalence + concurrent append under race"
go test -race -count=1 -run 'TestShard|TestConcurrentCategorizeAppend' \
    ./internal/category ./internal/relation

step "segmented storage: seal/select races + golden equivalence under race"
go test -race -count=1 \
    -run 'TestSegment|TestConcurrentAppendSealSelect|TestAppendExtends|TestZone' \
    ./internal/category ./internal/relation

step "repair equivalence + warmer under race"
go test -race -count=1 -run 'TestRepair|TestServeRepair|TestLearnBatchServeRace|TestWarm' \
    ./internal/category .

step "warmbench smoke (repair + pre-warming under learn churn)"
go run ./cmd/catload -warmbench -rows 2000 -queries 1500 -n 60 -mix 8 -learn-every 15 -warm-topk 8

step "chaos smoke (fault-injection suite)"
go test -race -count=1 -run 'TestChaos' ./internal/server

step "crash-recovery chaos (durable store under injected I/O faults, race)"
go test -race -count=1 -run 'TestCrashChaos|TestRecovery' ./internal/relation/durable

echo
echo "ci: all gates passed"
