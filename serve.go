package repro

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/category"
	"repro/internal/relation"
	"repro/internal/sqlparse"
	"repro/internal/treecache"
)

// The concurrent serving path (DESIGN.md §8): a request's SQL is parsed and
// reduced to a canonical signature; (signature, technique, options,
// stats-generation) keys a bounded singleflight tree cache; workload
// statistics live in immutable generation-stamped snapshots. The paper
// computes trees at query time from a fixed workload-stats table (§4.2), so
// under a fixed generation the tree is a pure function of the key — which is
// what makes the memoization sound.

// CacheStats is a point-in-time snapshot of the tree cache's counters.
type CacheStats = treecache.Stats

// SelectStats is a point-in-time snapshot of the relation's selection
// counters: vectorized vs fallback path counts, cumulative selection time,
// and the conjunct-bitmap cache's hit/miss/occupancy (DESIGN.md §9).
type SelectStats = relation.SelectStats

// SelectStats returns the base relation's selection counters. For an
// AdaptiveSystem the relation is shared across snapshots, so any snapshot
// reports the same counters.
func (s *System) SelectStats() SelectStats { return s.rel.SelectStats() }

// Generation returns the workload-stats generation this system serves. A
// system built by NewSystem is generation 0; AdaptiveSystem publishes
// snapshots with increasing generations.
func (s *System) Generation() uint64 { return s.gen }

// CacheEnabled reports whether this system memoizes trees.
func (s *System) CacheEnabled() bool { return s.cache.Enabled() }

// CacheStats returns the tree cache's counters (zero when caching is
// disabled). For an AdaptiveSystem the cache is shared across snapshots, so
// any snapshot reports the same counters.
func (s *System) CacheStats() CacheStats {
	if !s.cache.Enabled() {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// ServeParsed executes and categorizes q through the serving path: on a
// cache hit the selection is skipped entirely (the tree's root tuple-set is
// the result set); on a miss the selection and categorization run inside the
// singleflight, so concurrent identical requests cost one computation. hit
// reports whether the tree came from the cache. The returned tree is shared
// — treat it as immutable (render, estimate, refine; do not RankTree it).
// ctx cancellation abandons the wait and, cooperatively, the computation.
func (s *System) ServeParsed(ctx context.Context, q *Query, tech Technique, opts Options) (*Tree, bool, error) {
	if q == nil {
		return nil, false, fmt.Errorf("repro: ServeParsed requires a query")
	}
	if !s.cache.Enabled() {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		tree, err := s.buildTree(ctx, q, s.rel.Select(q.Predicate()), tech, opts)
		return tree, false, err
	}
	return s.cache.Do(ctx, s.cacheKey(q, tech, opts), func(cctx context.Context) (*Tree, int64, error) {
		tree, err := s.buildTree(cctx, q, s.rel.Select(q.Predicate()), tech, opts)
		if err != nil {
			return nil, 0, err
		}
		return tree, treeBytes(tree), nil
	})
}

// Serve is ServeParsed over a SQL string, additionally returning the result
// size (the tree root's tuple count — no separate selection runs on a hit).
func (s *System) Serve(ctx context.Context, sql string, tech Technique, opts Options) (*Tree, int, bool, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, 0, false, err
	}
	tree, hit, err := s.ServeParsed(ctx, q, tech, opts)
	if err != nil {
		return nil, 0, false, err
	}
	return tree, tree.Root.Size(), hit, nil
}

// buildTree runs one categorization with the chosen technique — the single
// construction point behind Result.CategorizeWith and the serving path.
func (s *System) buildTree(ctx context.Context, q *Query, rows []int, tech Technique, opts Options) (*Tree, error) {
	switch tech {
	case CostBased:
		c := category.NewCategorizer(s.stats, opts)
		c.Corr = s.corr
		c.Ctx = ctx
		return c.CategorizeRows(s.rel, q, rows)
		// Cost-based trees carry their (possibly path-conditional)
		// probabilities from construction; no re-annotation.
	case AttrCost, NoCost:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := &category.Baseline{Stats: s.stats, Opts: opts, Kind: tech}
		tree, err := b.CategorizeRows(s.rel, q, rows)
		if err != nil {
			return nil, err
		}
		est := &category.Estimator{Stats: s.stats}
		if s.corr != nil {
			est.AnnotateConditional(tree, s.corr, opts.MinCondSupport)
		} else {
			est.Annotate(tree)
		}
		return tree, nil
	default:
		return nil, fmt.Errorf("repro: unknown technique %v", tech)
	}
}

// cacheKey composes the serving-path cache key. The query contributes its
// canonical signature (spelling-independent); the technique and the full
// option set contribute a fingerprint (conservative: options that default to
// the same effective value key separately); the stats generation makes every
// statistics snapshot its own key space, and the relation's data generation
// keeps trees built before an Append from being served after it.
func (s *System) cacheKey(q *Query, tech Technique, opts Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%g|%g|%d|%d|%g|%t|%t|%d|%d|%t|%t|%d|%d|%s",
		tech, opts.M, opts.K, opts.X, opts.MaxBuckets, opts.MinBucket, opts.Frac,
		opts.AutoBuckets, opts.EquiDepth, opts.MaxZeroCandidates, opts.MaxLevels,
		opts.Parallel, opts.CandidateAttrs != nil, opts.MaxCategories, opts.MinCondSupport,
		strings.Join(opts.CandidateAttrs, "\x1f"))
	return fmt.Sprintf("%s\x1e%x\x1e%d\x1e%d", q.Signature(), h.Sum64(), s.gen, s.rel.DataGeneration())
}

// treeBytes approximates a tree's resident size for the cache's byte bound:
// per-node struct overhead plus the tuple-set and label payloads.
func treeBytes(t *Tree) int64 {
	const nodeOverhead = 160 // Node struct, Children slice header, pointers
	size := int64(96)        // Tree struct + LevelAttrs
	for _, a := range t.LevelAttrs {
		size += int64(len(a))
	}
	t.Root.Walk(func(n *Node, _ int) bool {
		size += nodeOverhead + int64(len(n.Tset))*8 + int64(len(n.Label.Attr)+len(n.Label.Value))
		for _, v := range n.Label.Values {
			size += int64(len(v)) + 16
		}
		return true
	})
	return size
}
