package repro

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/category"
	"repro/internal/relation"
	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
	"repro/internal/sqlparse"
	"repro/internal/treecache"
	"repro/internal/workload"
)

// The concurrent serving path (DESIGN.md §8): a request's SQL is parsed and
// reduced to a canonical signature; (signature, technique, options,
// stats-generation) keys a bounded singleflight tree cache; workload
// statistics live in immutable generation-stamped snapshots. The paper
// computes trees at query time from a fixed workload-stats table (§4.2), so
// under a fixed generation the tree is a pure function of the key — which is
// what makes the memoization sound.

// CacheStats is a point-in-time snapshot of the tree cache's counters.
type CacheStats = treecache.Stats

// ServePolicy is the per-request resilience budget (DESIGN.md §10): a hard
// server-side deadline, the soft budget that triggers degradation, and the
// degradation switch. The zero value reproduces the pre-resilience serving
// path exactly.
type ServePolicy = resilience.Policy

// Degradation reports how far down the ladder a served tree was built.
type Degradation = resilience.Degradation

// Degradation rungs: full fidelity, Attr-Cost baseline, flat SHOWTUPLES.
const (
	DegradeNone     = resilience.DegradeNone
	DegradeAttrCost = resilience.DegradeAttrCost
	DegradeFlat     = resilience.DegradeFlat
)

// ServeOutcome is one serving-path result: the tree, whether it came from
// the cache, and whether (and how far) it was degraded. A degraded tree
// never reports Hit — degraded results are delivered to the singleflight
// waiters that co-requested them but are never stored in the cache.
type ServeOutcome struct {
	Tree     *Tree
	Hit      bool
	Degraded Degradation
}

// served is the tree cache's value type: the tree plus its degradation rung,
// so singleflight waiters joining a degraded compute learn what they got.
// Stored entries are always full fidelity (degraded computes are not
// inserted). stats pins the immutable statistics snapshot the tree was built
// under: when a later generation finds this entry stale, diffing that snapshot
// against the current one decides whether the tree can be repaired in place
// (DESIGN.md §13).
type served struct {
	tree  *Tree
	deg   Degradation
	stats *workload.Stats
}

// errSoftBudget is the cancellation cause of a degradation step's soft
// budget, distinguishing "this rung was too slow, try a cheaper one" from
// the hard deadline and from client cancellation.
var errSoftBudget = errors.New("repro: soft categorization budget exceeded")

// resilienceCounters is shared (by pointer) across an AdaptiveSystem's
// snapshots, like the relation and the tree cache: the serving path's
// degradation and panic counts are properties of the serving process, not of
// one statistics generation.
type resilienceCounters struct {
	panics       atomic.Uint64
	degradedAttr atomic.Uint64
	degradedFlat atomic.Uint64
}

// ResilienceStats is a point-in-time snapshot of the serving path's
// resilience counters (surfaced in /healthz).
type ResilienceStats struct {
	// Panics counts categorizer panics converted to errors at a recover()
	// boundary — both the singleflight compute boundary and the uncached
	// serving path.
	Panics uint64 `json:"panics"`
	// DegradedAttrCost and DegradedFlat count requests served one and two
	// rungs down the degradation ladder.
	DegradedAttrCost uint64 `json:"degradedAttrCost"`
	DegradedFlat     uint64 `json:"degradedFlat"`
}

// ResilienceStats returns the serving path's degradation and panic counters.
// For an AdaptiveSystem the counters are shared across snapshots.
func (s *System) ResilienceStats() ResilienceStats {
	return ResilienceStats{
		Panics:           s.resil.panics.Load() + s.CacheStats().Panics,
		DegradedAttrCost: s.resil.degradedAttr.Load(),
		DegradedFlat:     s.resil.degradedFlat.Load(),
	}
}

// repairCounters tracks how stale-entry revalidation resolves (DESIGN.md
// §13). Shared (by pointer) across an AdaptiveSystem's snapshots like the
// cache and the resilience counters: repair activity is a property of the
// serving process.
type repairCounters struct {
	reused       atomic.Uint64
	repaired     atomic.Uint64
	rebuilt      atomic.Uint64
	copiedNodes  atomic.Uint64
	rebuiltNodes atomic.Uint64
}

// RepairStats is a point-in-time snapshot of stale-tree revalidation activity
// (surfaced in /healthz). Every counter describes a cache miss that found a
// superseded-generation tree to start from.
type RepairStats struct {
	// Reused counts stale trees adopted unchanged because the statistics
	// diff was empty (a Learn that didn't move any table).
	Reused uint64 `json:"reused"`
	// Repaired counts stale trees incrementally repaired into the new
	// generation; Rebuilt counts the ones where repair declined (no trace,
	// budget exceeded, correlation model active) and a cold build ran.
	Repaired uint64 `json:"repaired"`
	Rebuilt  uint64 `json:"rebuilt"`
	// CopiedNodes and RebuiltNodes sum RepairInfo over successful repairs:
	// how much tree structure was reused versus rebuilt below divergences.
	CopiedNodes  uint64 `json:"copiedNodes"`
	RebuiltNodes uint64 `json:"rebuiltNodes"`
}

// RepairStats returns the stale-tree revalidation counters. For an
// AdaptiveSystem the counters are shared across snapshots.
func (s *System) RepairStats() RepairStats {
	return RepairStats{
		Reused:       s.repairc.reused.Load(),
		Repaired:     s.repairc.repaired.Load(),
		Rebuilt:      s.repairc.rebuilt.Load(),
		CopiedNodes:  s.repairc.copiedNodes.Load(),
		RebuiltNodes: s.repairc.rebuiltNodes.Load(),
	}
}

// SelectStats is a point-in-time snapshot of the relation's selection
// counters: vectorized vs fallback path counts, cumulative selection time,
// and the conjunct-bitmap cache's hit/miss/occupancy (DESIGN.md §9).
type SelectStats = relation.SelectStats

// SelectStats returns the base relation's selection counters. For an
// AdaptiveSystem the relation is shared across snapshots, so any snapshot
// reports the same counters.
func (s *System) SelectStats() SelectStats { return s.rel.SelectStats() }

// StorageStats is a point-in-time snapshot of the relation's segmented
// columnar store: sealed-segment count and bytes, tail size, seal count,
// and zone-map pruning counters (DESIGN.md §14).
type StorageStats = relation.StorageStats

// StorageStats returns the base relation's segment-storage counters. For an
// AdaptiveSystem the relation is shared across snapshots, so any snapshot
// reports the same counters.
func (s *System) StorageStats() StorageStats { return s.rel.StorageStats() }

// ShardingStats is a point-in-time snapshot of the shard-parallel build
// counters plus the effective shard configuration (DESIGN.md §12).
type ShardingStats = category.ShardingStats

// ShardingStats returns the shard-parallel build counters and the active
// shard count (surfaced in /healthz). For an AdaptiveSystem the counters are
// shared across snapshots.
func (s *System) ShardingStats() ShardingStats {
	return s.shardc.Snapshot(s.opts.Shards)
}

// Generation returns the workload-stats generation this system serves. A
// system built by NewSystem is generation 0; AdaptiveSystem publishes
// snapshots with increasing generations.
func (s *System) Generation() uint64 { return s.gen }

// CacheEnabled reports whether this system memoizes trees.
func (s *System) CacheEnabled() bool { return s.cache.Enabled() }

// CacheStats returns the tree cache's counters (zero when caching is
// disabled). For an AdaptiveSystem the cache is shared across snapshots, so
// any snapshot reports the same counters.
func (s *System) CacheStats() CacheStats {
	if !s.cache.Enabled() {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// ServeParsed executes and categorizes q through the serving path: on a
// cache hit the selection is skipped entirely (the tree's root tuple-set is
// the result set); on a miss the selection and categorization run inside the
// singleflight, so concurrent identical requests cost one computation. hit
// reports whether the tree came from the cache. The returned tree is shared
// — treat it as immutable (render, estimate, refine; do not RankTree it).
// ctx cancellation abandons the wait and, cooperatively, the computation.
// ServeParsed is ServeParsedWith under the zero policy: no server deadline,
// no degradation.
func (s *System) ServeParsed(ctx context.Context, q *Query, tech Technique, opts Options) (*Tree, bool, error) {
	out, err := s.ServeParsedWith(ctx, q, tech, opts, ServePolicy{})
	return out.Tree, out.Hit, err
}

// ServeParsedWith is ServeParsed under a resilience policy (DESIGN.md §10).
// pol.Deadline imposes a server-side wall budget: when it fires, the error
// satisfies errors.Is(err, resilience.ErrServerTimeout), distinguishing the
// server's deadline from the client abandoning the request. With pol.Degrade
// set, a cost-based build that blows pol.SoftBudget degrades stepwise — the
// Attr-Cost baseline, then the flat SHOWTUPLES tree — rather than erroring;
// the rung comes back in the outcome's Degraded field. Degraded trees are
// delivered to the singleflight waiters that co-requested them but are never
// cached as if they were the full tree. Panics anywhere in the categorizer
// are converted to errors at a recover() boundary; the process survives.
func (s *System) ServeParsedWith(ctx context.Context, q *Query, tech Technique, opts Options, pol ServePolicy) (ServeOutcome, error) {
	var out ServeOutcome
	if q == nil {
		return out, fmt.Errorf("repro: ServeParsed requires a query")
	}
	pol = pol.Effective()
	if pol.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, pol.Deadline, resilience.ErrServerTimeout)
		defer cancel()
	}
	if !s.cache.Enabled() {
		if err := ctx.Err(); err != nil {
			return out, mapDeadlineErr(ctx, err)
		}
		tree, deg, err := s.buildLadder(ctx, q, s.rel.Select(q.Predicate()), tech, opts, pol)
		if err != nil {
			return out, mapDeadlineErr(ctx, err)
		}
		return ServeOutcome{Tree: tree, Degraded: deg}, nil
	}
	v, hit, err := s.cache.DoStale(ctx, s.cacheKey(q, tech, opts), s.cacheBaseKey(q, tech, opts),
		func(cctx context.Context, stale served, haveStale bool) (served, int64, bool, error) {
			if haveStale {
				if tree, ok := s.repairFromStale(cctx, q, stale, tech, opts); ok {
					return served{tree, DegradeNone, s.stats}, treeBytes(tree) + tree.TraceBytes(), true, nil
				}
			}
			rows := s.staleRows(q, stale, haveStale)
			tree, deg, err := s.buildLadder(cctx, q, rows, tech, opts, pol)
			if err != nil {
				return served{}, 0, false, err
			}
			if deg != DegradeNone {
				// A degraded tree is an overload artifact, not the query's true
				// categorization: hand it to the waiters, store nothing.
				return served{tree, deg, s.stats}, -1, false, nil
			}
			return served{tree, deg, s.stats}, treeBytes(tree) + tree.TraceBytes(), false, nil
		})
	if err != nil {
		return out, mapDeadlineErr(ctx, err)
	}
	return ServeOutcome{Tree: v.tree, Hit: hit, Degraded: v.deg}, nil
}

// staleRows returns the result rows for a cache-miss build. A stale entry's
// root tuple-set IS the query's result: the base key includes the relation's
// data generation, so the stale tree was selected from exactly these rows —
// the selection can be skipped even when the tree itself cannot be repaired.
func (s *System) staleRows(q *Query, stale served, haveStale bool) []int {
	if haveStale && stale.tree != nil {
		return stale.tree.Root.Tset
	}
	return s.rel.Select(q.Predicate())
}

// repairFromStale tries to revalidate a superseded-generation cache entry
// against the current statistics snapshot (DESIGN.md §13): an empty diff
// adopts the stale tree outright; otherwise the recorded build trace drives
// an incremental repair that is byte-identical to a cold build. ok=false
// means the caller must build cold (and the decline was counted). Runs inside
// the cache's singleflight, behind its panic boundary.
func (s *System) repairFromStale(ctx context.Context, q *Query, stale served, tech Technique, opts Options) (*Tree, bool) {
	if tech != CostBased || s.corr != nil || stale.tree == nil || stale.stats == nil || stale.deg != DegradeNone {
		return nil, false
	}
	diff := workload.DiffStats(stale.stats, s.stats, 0)
	if diff.Same {
		// The learn didn't move any table this tree reads: same tree, new
		// generation key.
		s.repairc.reused.Add(1)
		return stale.tree, true
	}
	if stale.tree.Trace == nil {
		s.repairc.rebuilt.Add(1)
		return nil, false
	}
	if opts.Shards == 0 {
		opts.Shards = s.opts.Shards
	}
	c := category.NewCategorizer(s.stats, opts)
	c.Ctx = ctx
	c.Counters = s.shardc
	c.RecordTrace = true // the repaired tree must itself be repairable
	tree, info, err := c.Repair(s.rel, q, stale.tree, diff)
	if err != nil || !info.OK {
		s.repairc.rebuilt.Add(1)
		return nil, false
	}
	s.repairc.repaired.Add(1)
	s.repairc.copiedNodes.Add(uint64(info.CopiedNodes))
	s.repairc.rebuiltNodes.Add(uint64(info.RebuiltNodes))
	return tree, true
}

// Peek returns the memoized full-fidelity tree for q if one is stored,
// computing nothing. This is the admission-control bypass: a cache hit costs
// no categorization, so the server needn't spend a concurrency slot on it.
func (s *System) Peek(q *Query, tech Technique, opts Options) (*Tree, bool) {
	if q == nil || !s.cache.Enabled() {
		return nil, false
	}
	if v, ok := s.cache.Get(s.cacheKey(q, tech, opts)); ok {
		return v.tree, true
	}
	return nil, false
}

// mapDeadlineErr tags a context error caused by the server-imposed deadline
// with resilience.ErrServerTimeout, so callers (and the HTTP layer's 504 vs
// 499 mapping) need not reach back into the context for the cause.
func mapDeadlineErr(ctx context.Context, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if errors.Is(context.Cause(ctx), resilience.ErrServerTimeout) && !errors.Is(err, resilience.ErrServerTimeout) {
			return fmt.Errorf("%w: %w", resilience.ErrServerTimeout, err)
		}
	}
	return err
}

// buildLadder is the deadline-budgeted build behind the serving path. Without
// degradation it is one protected build. With it, each rung gets a soft wall
// budget (full technique, then — for cost-based requests — the Attr-Cost
// baseline at half the budget); a rung that blows its budget while the
// request is still alive falls through to the next, and the final rung is
// the flat SHOWTUPLES tree, which always succeeds immediately. Real errors
// (hard deadline, client cancellation, panics, bad input) abort the ladder.
func (s *System) buildLadder(ctx context.Context, q *Query, rows []int, tech Technique, opts Options, pol ServePolicy) (*Tree, Degradation, error) {
	if err := faultinject.Inject(ctx, faultinject.SiteServeBuild); err != nil {
		return nil, DegradeNone, err
	}
	if !pol.Degrade || pol.SoftBudget <= 0 {
		tree, err := s.protectedBuild(ctx, q, rows, tech, opts)
		return tree, DegradeNone, err
	}
	type rung struct {
		tech   Technique
		budget time.Duration
		deg    Degradation
	}
	rungs := []rung{{tech, pol.SoftBudget, DegradeNone}}
	if tech == CostBased {
		rungs = append(rungs, rung{AttrCost, pol.SoftBudget / 2, DegradeAttrCost})
	}
	for _, r := range rungs {
		sctx, cancel := context.WithTimeoutCause(ctx, r.budget, errSoftBudget)
		tree, err := s.protectedBuild(sctx, q, rows, r.tech, opts)
		cancel()
		if err == nil {
			if r.deg == DegradeAttrCost {
				s.resil.degradedAttr.Add(1)
			}
			return tree, r.deg, nil
		}
		soft := errors.Is(context.Cause(sctx), errSoftBudget)
		if !soft && errors.Is(err, context.DeadlineExceeded) {
			// The build observed the rung's deadline on the wall clock before
			// the runtime timer delivered it (a saturated scheduler starves
			// timers; the cancel above then recorded Canceled as the cause).
			// It was the rung's own budget only if it was tighter than any
			// deadline the request already carried.
			if d, ok := sctx.Deadline(); ok {
				if rd, rok := ctx.Deadline(); !rok || d.Before(rd) {
					soft = true
				}
			}
		}
		if ctx.Err() != nil || !soft {
			// The request itself died (hard deadline, all waiters gone) or the
			// build failed for a non-budget reason: degrading won't help.
			return nil, DegradeNone, err
		}
	}
	s.resil.degradedFlat.Add(1)
	return category.FlatTree(s.rel, rows, opts), DegradeFlat, nil
}

// protectedBuild is buildTree behind the resilience.Protect boundary: a
// panic anywhere in the categorizer becomes a *resilience.PanicError instead
// of tearing down the process (the cached path has the same boundary inside
// the singleflight, so panics are isolated with or without the cache).
func (s *System) protectedBuild(ctx context.Context, q *Query, rows []int, tech Technique, opts Options) (*Tree, error) {
	return resilience.Protect(
		func(*resilience.PanicError) { s.resil.panics.Add(1) },
		func() (*Tree, error) { return s.buildTree(ctx, q, rows, tech, opts) },
	)
}

// Serve is ServeParsed over a SQL string, additionally returning the result
// size (the tree root's tuple count — no separate selection runs on a hit).
func (s *System) Serve(ctx context.Context, sql string, tech Technique, opts Options) (*Tree, int, bool, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, 0, false, err
	}
	tree, hit, err := s.ServeParsed(ctx, q, tech, opts)
	if err != nil {
		return nil, 0, false, err
	}
	return tree, tree.Root.Size(), hit, nil
}

// buildTree runs one categorization with the chosen technique — the single
// construction point behind Result.CategorizeWith and the serving path.
// A zero opts.Shards inherits the system default (catserve -shards), so
// per-request option sets that never mention sharding still fan out.
func (s *System) buildTree(ctx context.Context, q *Query, rows []int, tech Technique, opts Options) (*Tree, error) {
	if opts.Shards == 0 {
		opts.Shards = s.opts.Shards
	}
	switch tech {
	case CostBased:
		c := category.NewCategorizer(s.stats, opts)
		c.Corr = s.corr
		c.Ctx = ctx
		c.Counters = s.shardc
		// Cached builds record the repair trace (DESIGN.md §13): the tree may
		// outlive this statistics generation as stale repair material. One-shot
		// uncached builds skip the bookkeeping.
		c.RecordTrace = s.cache.Enabled()
		return c.CategorizeRows(s.rel, q, rows)
		// Cost-based trees carry their (possibly path-conditional)
		// probabilities from construction; no re-annotation.
	case AttrCost, NoCost:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.Inject(ctx, faultinject.SiteBaseline); err != nil {
			return nil, err
		}
		b := &category.Baseline{Stats: s.stats, Opts: opts, Kind: tech, Counters: s.shardc}
		tree, err := b.CategorizeRows(s.rel, q, rows)
		if err != nil {
			return nil, err
		}
		est := &category.Estimator{Stats: s.stats}
		if s.corr != nil {
			est.AnnotateConditional(tree, s.corr, opts.MinCondSupport)
		} else {
			est.Annotate(tree)
		}
		return tree, nil
	default:
		return nil, fmt.Errorf("repro: unknown technique %v", tech)
	}
}

// cacheKey composes the serving-path cache key. The query contributes its
// canonical signature (spelling-independent); the technique and the full
// option set contribute a fingerprint (conservative: options that default to
// the same effective value key separately); the stats generation makes every
// statistics snapshot its own key space, and the relation's data generation
// keeps trees built before an Append from being served after it. The float
// options are spelled through relation.SigNum like every other cache-key
// layer, so K=-0 and K=0 — or any pair of spellings FormatFloat would split —
// cannot fork (or collide) key spaces. Options.Shards is deliberately
// excluded: the built tree is byte-identical at every shard count (§12), so
// keying on it would only fork the cache into redundant copies.
func (s *System) cacheKey(q *Query, tech Technique, opts Options) string {
	return fmt.Sprintf("%s\x1e%d", s.cacheBaseKey(q, tech, opts), s.gen)
}

// cacheBaseKey is the generation-free prefix of cacheKey: everything that
// identifies the logical entry (signature, technique, options, data
// generation) except the stats generation. Two cache keys sharing a base key
// are the same query under different statistics snapshots — which is exactly
// the relation that makes a superseded entry valid repair material, so the
// cache indexes stale lookups by this prefix. The data generation stays in
// the base: a tree built before an Append categorizes different rows and can
// repair nothing.
func (s *System) cacheBaseKey(q *Query, tech Technique, opts Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%s|%d|%d|%s|%t|%t|%d|%d|%t|%t|%d|%d|%s",
		tech, opts.M, relation.SigNum(opts.K), relation.SigNum(opts.X),
		opts.MaxBuckets, opts.MinBucket, relation.SigNum(opts.Frac),
		opts.AutoBuckets, opts.EquiDepth, opts.MaxZeroCandidates, opts.MaxLevels,
		opts.Parallel, opts.CandidateAttrs != nil, opts.MaxCategories, opts.MinCondSupport,
		strings.Join(opts.CandidateAttrs, "\x1f"))
	return fmt.Sprintf("%s\x1e%x\x1e%d", q.Signature(), h.Sum64(), s.rel.DataGeneration())
}

// treeBytes approximates a tree's resident size for the cache's byte bound:
// per-node struct overhead plus the tuple-set and label payloads.
func treeBytes(t *Tree) int64 {
	const nodeOverhead = 160 // Node struct, Children slice header, pointers
	size := int64(96)        // Tree struct + LevelAttrs
	for _, a := range t.LevelAttrs {
		size += int64(len(a))
	}
	t.Root.Walk(func(n *Node, _ int) bool {
		size += nodeOverhead + int64(len(n.Tset))*8 + int64(len(n.Label.Attr)+len(n.Label.Value))
		for _, v := range n.Label.Values {
			size += int64(len(v)) + 16
		}
		return true
	})
	return size
}
