# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench report examples fuzz clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# One benchmark per table/figure of the paper (see EXPERIMENTS.md).
bench:
	go test -bench=. -benchmem ./...

# The full formatted evaluation report at paper scale.
report:
	go run ./cmd/benchrunner -out experiments_report.txt -json experiments_report.json

examples:
	go run ./examples/quickstart
	go run ./examples/homes
	go run ./examples/products
	go run ./examples/workloadtuning
	go run ./examples/personalization
	go run ./examples/webclient

# Short fuzzing passes over the parser and CSV loader.
fuzz:
	go test ./internal/sqlparse -fuzz=FuzzParse -fuzztime=30s
	go test ./internal/sqlparse -fuzz=FuzzConditionOverlap -fuzztime=15s
	go test ./internal/relation -fuzz=FuzzReadCSV -fuzztime=30s

clean:
	rm -f experiments_report.txt experiments_report.json test_output.txt bench_output.txt
