# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench bench-all servebench selectbench shardbench warmbench segmentbench check chaos crashchaos report examples fuzz lint lint-selfcheck lint-perf ci clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Vet, catlint, plus the race-checked hot packages: the categorizer's worker
# pool, the relation's column caches and conjunct-bitmap cache, and the
# serving path (singleflight tree cache, snapshot-swapped workload stats,
# bounded session table, admission limiter, fault injector).
check: lint
	go test -race ./internal/category ./internal/relation ./internal/sqlparse \
		./internal/treecache ./internal/server ./internal/resilience/... .

# catlint (DESIGN.md §11): the project-specific static-analysis suite. Every
# check mechanizes an invariant a past PR broke and then fixed by hand. Use
# `go run ./cmd/catlint -json ./...` for machine-readable diagnostics and
# `go run ./cmd/catlint -list` for the check inventory.
lint:
	gofmt -l . | grep . && exit 1 || true
	go vet ./...
	go run ./cmd/catlint ./...

# Self-check: catlint must exit non-zero on the seeded-violation fixtures
# (the go tool's ... wildcard skips testdata, so the fixture packages are
# enumerated outright) and its own fixture tests must pass.
lint-selfcheck:
	@if go run ./cmd/catlint $$(find internal/lint/testdata/src -name '*.go' \
		| xargs -n1 dirname | sort -u | sed 's|^|./|') >/dev/null; then \
		echo "catlint failed to flag the seeded fixture violations" >&2; exit 1; \
	else echo "catlint flags the seeded fixtures: ok"; fi
	go test ./internal/lint

# Perf gate: the interprocedural passes (call graph + effect summaries,
# DESIGN.md §16) must keep a full-tree catlint run under 60 seconds, so the
# suite stays cheap enough to sit in every CI run. Builds the binary first so
# the timing measures analysis, not compilation.
lint-perf:
	@go build -o catlint ./cmd/catlint
	@start=$$(date +%s); ./catlint -format=github ./... || exit 1; \
	end=$$(date +%s); elapsed=$$((end - start)); \
	echo "catlint full tree: $${elapsed}s"; \
	if [ $$elapsed -ge 60 ]; then \
		echo "catlint took $${elapsed}s, budget is 60s" >&2; exit 1; \
	fi
	@rm -f catlint

# Everything CI runs, in CI's order.
ci:
	./ci.sh

# The fault-injection chaos suite (DESIGN.md §10) under the race detector:
# seeded latency/stall/panic faults at every named site while 8 workers
# hammer the serving path; asserts only 200/499/503/504 escape, cache hits
# are never degraded trees, and nothing leaks after the drain.
chaos:
	go test -race -count=1 -run 'TestChaos' -v ./internal/server

# The crash-recovery chaos suite (DESIGN.md §15) under the race detector:
# the full durable-store test set — every-injection-point crash/recover
# sweeps, double crashes during recovery, byte-granular WAL truncation, WAL
# and codec fuzz seeds — plus the CRASHCHAOS-gated scale runs: a 100k-row
# ingest killed at sampled points per fault site, and the 1.7M-row reopened
# store answering a selective Select without loading the segments into RAM.
crashchaos:
	CRASHCHAOS=1 go test -race -count=1 -timeout=30m -v \
		-run 'TestCrashChaos|TestRecovery|TestScaleLazySelect|Fuzz' \
		./internal/relation/durable

# The categorizer/columnar benchmarks, recorded as BENCH_categorize.json
# (testdata/bench_seed.txt holds the pre-columnar baseline for the ratios).
bench:
	go test -run='^$$' -bench=. -benchmem -count=5 ./internal/category ./internal/relation \
		| tee bench_output.txt \
		| go run ./cmd/benchjson -baseline testdata/bench_seed.txt \
		  -note "columnar projections + dictionary-coded partitioning vs row-wise seed" \
		  -o BENCH_categorize.json
	@echo wrote BENCH_categorize.json

# Every benchmark in the repo (one per table/figure of the paper; see
# EXPERIMENTS.md).
bench-all:
	go test -bench=. -benchmem ./...

# The serving-path numbers, recorded as BENCH_serve.json: httptest endpoint
# benchmarks (per-request cost, cached vs uncached) plus cmd/catload's
# 8-client load run at paper scale (20k rows) with the cold/warm latency
# split. Both emit go-bench-format lines, so benchjson folds them together.
servebench:
	{ go test -run='^$$' -bench='BenchmarkQueryEndpoint' -count=3 ./internal/server ; \
	  go run ./cmd/catload -inproc -bench -rows 20000 -queries 10000 -n 400 -c 8 -mix 16 ; } \
		| tee servebench_output.txt \
		| go run ./cmd/benchjson \
		  -note "singleflight tree cache + snapshot stats: httptest endpoint benchmarks and catload 8-client run, rows=20000" \
		  -o BENCH_serve.json
	@echo wrote BENCH_serve.json

# The selection-engine numbers, recorded as BENCH_select.json: warm
# (conjunct-cache hit), indexed, single-conjunct, and cold (cache dropped per
# iteration) Select at paper scale, against the pre-vectorization row-wise
# baseline in testdata/select_seed.txt.
selectbench:
	go test -run='^$$' -bench='BenchmarkSelectQuery' -benchmem -count=5 ./internal/relation \
		| tee selectbench_output.txt \
		| go run ./cmd/benchjson -baseline testdata/select_seed.txt \
		  -note "vectorized bitmap selection + conjunct-bitmap cache vs row-wise seed, rows=20000" \
		  -o BENCH_select.json
	@echo wrote BENCH_select.json

# The shard-parallel numbers, recorded as BENCH_shard.json: the
# BenchmarkCategorizeSharded shards=1,2,4,8 scaling curve plus a fresh
# BenchmarkCategorize run, then `benchjson -diff` folds the ratios against
# the recorded BENCH_categorize.json into the document's note — the shards=1
# no-regression check (DESIGN.md §12).
shardbench:
	go test -run='^$$' -bench='^BenchmarkCategorize(Sharded)?$$' -benchmem -count=5 ./internal/category \
		| tee shardbench_output.txt \
		| go run ./cmd/benchjson \
		  -note "shard-parallel categorization, rows=20000, shards=1,2,4,8 (DESIGN.md §12)" \
		  -o BENCH_shard.json
	go run ./cmd/benchjson -diff -o BENCH_shard.json BENCH_categorize.json BENCH_shard.json
	@echo wrote BENCH_shard.json

# The segmented-storage numbers, recorded as BENCH_segment.json: steady-state
# per-row Append cost at growing preloads, the append-then-read cost of the
# incremental maintenance path against the replayed drop-everything design on
# a preloaded 100k relation, and zone-map-pruned vs structurally-unpruned
# cold Select at paper scale (1.7M rows; DESIGN.md §14).
segmentbench:
	go test -run='^$$' -bench='^BenchmarkSegment' -benchmem -count=5 -timeout=45m ./internal/relation \
		| tee segmentbench_output.txt \
		| go run ./cmd/benchjson \
		  -note "segmented columnar store: incremental append maintenance vs drop-everything baseline (rows=100000) + zone-map pruning at paper scale (rows=1700000, DESIGN.md §14)" \
		  -o BENCH_segment.json
	@echo wrote BENCH_segment.json

# The learning-churn numbers, recorded as BENCH_warm.json: cmd/catload's
# 3-phase warmbench (baseline, learn storm without warming, learn storm with
# the pre-warmer) at paper scale — p50/p95 serve latency, hit counts, and
# the repaired-vs-rebuilt tree and node counters behind them (DESIGN.md §13).
warmbench:
	go run ./cmd/catload -warmbench -bench -rows 20000 -queries 10000 \
		-n 600 -mix 16 -learn-every 25 -warm-topk 16 \
		| tee warmbench_output.txt \
		| go run ./cmd/benchjson \
		  -note "incremental tree repair + predictive pre-warming under a learn storm (DESIGN.md §13), rows=20000, learn-every=25" \
		  -o BENCH_warm.json
	@echo wrote BENCH_warm.json

# The full formatted evaluation report at paper scale.
report:
	go run ./cmd/benchrunner -out experiments_report.txt -json experiments_report.json

examples:
	go run ./examples/quickstart
	go run ./examples/homes
	go run ./examples/products
	go run ./examples/workloadtuning
	go run ./examples/personalization
	go run ./examples/webclient

# Short fuzzing passes over the parser and CSV loader.
fuzz:
	go test ./internal/sqlparse -fuzz=FuzzParse -fuzztime=30s
	go test ./internal/sqlparse -fuzz=FuzzConditionOverlap -fuzztime=15s
	go test ./internal/relation -fuzz=FuzzReadCSV -fuzztime=30s
	go test ./internal/relation -fuzz=FuzzVectorizedSelect -fuzztime=30s

clean:
	rm -f experiments_report.txt experiments_report.json test_output.txt bench_output.txt servebench_output.txt selectbench_output.txt shardbench_output.txt warmbench_output.txt segmentbench_output.txt
	rm -f catlint catlint.json lint_output.txt
