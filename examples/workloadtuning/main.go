// Workloadtuning: the same data and the same query produce different
// category trees under different workloads — the point of §4.2: the
// categorization adapts to what past users cared about, with no manual
// configuration. Two synthetic buyer populations (price-sensitive vs
// size-sensitive) are mined and the resulting trees compared.
//
//	go run ./examples/workloadtuning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

const query = "SELECT * FROM ListProperty WHERE " +
	"neighborhood IN ('San Jose, CA','Palo Alto, CA','Mountain View, CA','Sunnyvale, CA'," +
	"'Cupertino, CA','Santa Clara, CA','Menlo Park, CA','Redwood City, CA'," +
	"'Campbell, CA','Los Gatos, CA','Milpitas, CA')"

// population emits a buyer-query log whose users filter mostly on the given
// hot attribute (plus neighborhood, which everyone uses).
func population(hot string, n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	hoods := []string{"San Jose, CA", "Palo Alto, CA", "Mountain View, CA", "Sunnyvale, CA"}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("SELECT * FROM ListProperty WHERE neighborhood IN ('%s')", hoods[rng.Intn(len(hoods))])
		if rng.Float64() < 0.85 {
			switch hot {
			case "price":
				lo := 300000 + rng.Intn(10)*50000
				q += fmt.Sprintf(" AND price BETWEEN %d AND %d", lo, lo+150000)
			case "squarefootage":
				lo := 1000 + rng.Intn(8)*250
				q += fmt.Sprintf(" AND squarefootage BETWEEN %d AND %d", lo, lo+750)
			}
		}
		if rng.Float64() < 0.3 {
			q += fmt.Sprintf(" AND bedroomcount >= %d", 2+rng.Intn(3))
		}
		out = append(out, q)
	}
	return out
}

func treeFor(rel *repro.Relation, workload []string) *repro.Tree {
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: workload,
		Intervals:   repro.DemoIntervals(),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := res.Categorize()
	if err != nil {
		log.Fatal(err)
	}
	return tree
}

func main() {
	rel := repro.DemoDataset(20000, 1)

	priceTree := treeFor(rel, population("price", 5000, 11))
	sizeTree := treeFor(rel, population("squarefootage", 5000, 12))

	fmt.Println("Same data, same query, two workloads:")
	fmt.Printf("  price-sensitive buyers  -> levels %v\n", priceTree.LevelAttrs)
	fmt.Printf("  size-sensitive buyers   -> levels %v\n\n", sizeTree.LevelAttrs)

	fmt.Println("Tree mined from the price-sensitive population (level 1-2):")
	fmt.Print(repro.RenderTree(priceTree, repro.RenderOptions{MaxDepth: 2, MaxChildren: 4}))
	fmt.Println("\nTree mined from the size-sensitive population (level 1-2):")
	fmt.Print(repro.RenderTree(sizeTree, repro.RenderOptions{MaxDepth: 2, MaxChildren: 4}))

	fmt.Println("\nAttribute elimination (x = 0.4) also adapts: rarely-filtered attributes")
	fmt.Println("(year built, bath count, the 43 cold columns) never become categories.")
}
