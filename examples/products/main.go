// Products: the categorizer on a different domain — an e-commerce catalog —
// demonstrating that the technique is domain-independent (§1: the solution
// needs only a relation and a query log, no hand-built taxonomy). This is
// the Amazon-style scenario the paper's introduction motivates: a search for
// 'databases' that dumps 32,580 uncategorized books on the user.
//
//	go run ./examples/products
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func buildCatalog(n int, seed int64) *repro.Relation {
	schema, err := repro.NewSchema(
		repro.Attribute{Name: "department", Type: repro.Categorical},
		repro.Attribute{Name: "brand", Type: repro.Categorical},
		repro.Attribute{Name: "price", Type: repro.Numeric},
		repro.Attribute{Name: "rating", Type: repro.Numeric},
		repro.Attribute{Name: "weightkg", Type: repro.Numeric},
		repro.Attribute{Name: "color", Type: repro.Categorical},
	)
	if err != nil {
		log.Fatal(err)
	}
	rel := repro.NewRelation("Products", schema)
	rng := rand.New(rand.NewSource(seed))
	departments := []string{"Books", "Electronics", "Home", "Toys", "Sports"}
	brands := []string{"Acme", "Globex", "Initech", "Umbrella", "Stark", "Wayne"}
	colors := []string{"black", "white", "red", "blue", "green"}
	for i := 0; i < n; i++ {
		dept := departments[rng.Intn(len(departments))]
		base := map[string]float64{"Books": 18, "Electronics": 220, "Home": 55, "Toys": 30, "Sports": 70}[dept]
		price := base * (0.3 + rng.ExpFloat64())
		if price > 2000 {
			price = 2000
		}
		rel.MustAppend(repro.Tuple{
			{Str: dept},
			{Str: brands[rng.Intn(len(brands))]},
			{Num: float64(int(price*100)) / 100},
			{Num: 1 + float64(rng.Intn(9))/2}, // 1.0 .. 5.0
			{Num: 0.1 + rng.Float64()*20},
			{Str: colors[rng.Intn(len(colors))]},
		})
	}
	return rel
}

// shopperLog emulates a store's query log: shoppers filter on department and
// price bands at round numbers; brand and rating appear occasionally, color
// and weight almost never (so attribute elimination discards them).
func shopperLog(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	departments := []string{"Books", "Electronics", "Home", "Toys", "Sports"}
	brands := []string{"Acme", "Globex", "Initech"}
	bands := [][2]int{{0, 25}, {25, 50}, {50, 100}, {100, 250}, {250, 500}, {500, 1000}}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		conds := ""
		add := func(c string) {
			if conds != "" {
				conds += " AND "
			}
			conds += c
		}
		if rng.Float64() < 0.8 {
			add(fmt.Sprintf("department IN ('%s')", departments[rng.Intn(len(departments))]))
		}
		if rng.Float64() < 0.6 {
			b := bands[rng.Intn(len(bands))]
			add(fmt.Sprintf("price BETWEEN %d AND %d", b[0], b[1]))
		}
		if rng.Float64() < 0.45 {
			add(fmt.Sprintf("rating >= %g", 3+float64(rng.Intn(4))/2))
		}
		if rng.Float64() < 0.3 {
			add(fmt.Sprintf("brand IN ('%s')", brands[rng.Intn(len(brands))]))
		}
		if rng.Float64() < 0.02 {
			add("color = 'red'")
		}
		if conds == "" {
			add("price BETWEEN 0 AND 100")
		}
		out = append(out, "SELECT * FROM Products WHERE "+conds)
	}
	return out
}

func main() {
	rel := buildCatalog(30000, 7)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: shopperLog(8000, 8),
		Intervals:   map[string]float64{"price": 5, "rating": 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.Query("SELECT * FROM Products WHERE department IN ('Books','Electronics') AND price BETWEEN 0 AND 250")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Catalog search returned %d products.\n\n", res.Len())

	tree, err := res.CategorizeOpts(repro.Options{M: 25, X: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Auto-generated catalog navigation (levels: %v):\n\n", tree.LevelAttrs)
	fmt.Print(repro.RenderTree(tree, repro.RenderOptions{MaxDepth: 2, MaxChildren: 6}))

	// A bargain hunter interested in cheap, highly rated electronics.
	interest, err := repro.ParseQuery(
		"SELECT * FROM Products WHERE department IN ('Electronics') AND price BETWEEN 25 AND 100 AND rating >= 4")
	if err != nil {
		log.Fatal(err)
	}
	out := repro.SimulateAll(tree, &repro.Intent{Query: interest})
	fmt.Printf("\nA bargain hunter examines %d labels + %d tuples to find all %d matching products\n",
		out.LabelsExamined, out.TuplesExamined, out.RelevantFound)
	fmt.Printf("(scanning the raw result would cost %d tuples — %.1fx more).\n",
		res.Len(), float64(res.Len())/out.Cost(1))
}
