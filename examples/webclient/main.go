// Webclient: the whole system over HTTP, end to end — it starts the
// categorization service in-process, then drives it the way the paper's
// study UI drove its treeview: create a session for a query, expand the
// interesting categories, list tuples, click the relevant ones, and read
// back the operation log and the items-examined account.
//
//	go run ./examples/webclient
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro"
	"repro/internal/server"
)

func main() {
	rel := repro.DemoDataset(10000, 1)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(5000, 2),
		Intervals:   repro.DemoIntervals(),
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{System: sys, Learn: true, MaxDepth: 4, MaxChildren: 100})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("service up at %s (in-process)\n\n", ts.URL)

	// 1. Start a session for an exploratory query.
	var created struct {
		ID          string   `json:"id"`
		ResultCount int      `json:"resultCount"`
		Levels      []string `json:"levels"`
		RootLabels  []string `json:"rootLabels"`
	}
	post(ts.URL+"/v1/session", map[string]any{
		"sql": "SELECT * FROM ListProperty WHERE neighborhood IN ('Seattle, WA','Bellevue, WA'," +
			"'Redmond, WA','Kirkland, WA','Issaquah, WA') AND price BETWEEN 200000 AND 400000",
	}, &created)
	fmt.Printf("session %s: %d homes, levels %v\n", created.ID[:8], created.ResultCount, created.Levels)
	fmt.Println("top categories:")
	for i, l := range created.RootLabels {
		fmt.Printf("  [%d] %s\n", i, l)
		if i == 4 {
			break
		}
	}

	// 2. Expand the first category, show the tuples of its first bucket.
	opURL := ts.URL + "/v1/session/" + created.ID + "/op"
	var op struct {
		Labels  []string `json:"labels"`
		Rows    []int    `json:"rows"`
		Summary struct {
			LabelsExamined int     `json:"LabelsExamined"`
			TuplesExamined int     `json:"TuplesExamined"`
			RelevantFound  int     `json:"RelevantFound"`
			Cost           float64 `json:"Cost"`
		} `json:"summary"`
	}
	post(opURL, map[string]any{"op": "expand", "path": []int{0}}, &op)
	fmt.Printf("\nexpanded %s -> %d subcategories\n", created.RootLabels[0], len(op.Labels))
	post(opURL, map[string]any{"op": "showtuples", "path": []int{0, 0}}, &op)
	fmt.Printf("opened the first bucket: %d tuples\n", len(op.Rows))

	// 3. Click two tuples as relevant.
	for _, row := range op.Rows[:min(2, len(op.Rows))] {
		post(opURL, map[string]any{"op": "click", "row": row}, &op)
	}

	// 4. Read the study-style log and measurements back.
	var status struct {
		Summary struct {
			LabelsExamined int     `json:"LabelsExamined"`
			TuplesExamined int     `json:"TuplesExamined"`
			RelevantFound  int     `json:"RelevantFound"`
			Cost           float64 `json:"Cost"`
		} `json:"summary"`
		Log []struct {
			Seq  int    `json:"seq"`
			Op   string `json:"op"`
			Path []int  `json:"path"`
			Row  int    `json:"row"`
		} `json:"log"`
	}
	get(ts.URL+"/v1/session/"+created.ID, &status)
	fmt.Printf("\nexploration so far: %d labels + %d tuples examined (cost %.0f), %d relevant found\n",
		status.Summary.LabelsExamined, status.Summary.TuplesExamined,
		status.Summary.Cost, status.Summary.RelevantFound)
	fmt.Println("operation log (what the paper's study recorded):")
	for _, entry := range status.Log {
		if entry.Op == "click" {
			fmt.Printf("  %d: click row %d\n", entry.Seq, entry.Row)
		} else {
			fmt.Printf("  %d: %s %v\n", entry.Seq, entry.Op, entry.Path)
		}
	}

	// The server learned from the session's query.
	var health struct {
		Learned float64 `json:"learned"`
	}
	get(ts.URL+"/healthz", &health)
	fmt.Printf("\nthe service folded %v served queries back into its workload statistics\n", health.Learned)
}

func post(url string, body any, out any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
