// Quickstart: generate the demo home-listing data, run one exploratory
// query, and print the automatically generated category tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Data: a synthetic stand-in for a real home-listing table
	//    (20k homes, 53 attributes), plus a log of 10k past buyer queries.
	rel := repro.DemoDataset(20000, 1)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(10000, 2),
		Intervals:   repro.DemoIntervals(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. An exploratory query that returns far too many homes to scan.
	res, err := sys.Query("SELECT * FROM ListProperty WHERE " +
		"neighborhood IN ('Seattle, WA','Bellevue, WA','Redmond, WA','Kirkland, WA'," +
		"'Issaquah, WA','Sammamish, WA','Renton, WA','Bothell, WA'," +
		"'Mercer Island, WA','Woodinville, WA') AND price BETWEEN 200000 AND 300000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("The query returned %d homes — information overload.\n\n", res.Len())

	// 3. Categorize the result with the cost-based algorithm.
	tree, err := res.Categorize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Generated category tree (levels: %v, %d categories, estimated exploration cost %.0f items):\n\n",
		tree.LevelAttrs, tree.NodeCount(), repro.EstimateCostAll(tree))
	fmt.Print(repro.RenderTree(tree, repro.RenderOptions{MaxDepth: 2, MaxChildren: 5}))
}
