// Personalization: the paper's footnote 4 sketches using a particular
// user's past behaviour instead of only the aggregate workload. This example
// blends one buyer's own query history into the statistics (weighted) and
// shows how the tree reshapes around what *she* filters on — here, a buyer
// who always searches by year built, an attribute the aggregate workload
// rarely uses.
//
//	go run ./examples/personalization
package main

import (
	"fmt"
	"log"

	"repro"
)

const query = "SELECT * FROM ListProperty WHERE " +
	"neighborhood IN ('Seattle, WA','Bellevue, WA','Redmond, WA','Kirkland, WA'," +
	"'Issaquah, WA','Sammamish, WA','Renton, WA','Bothell, WA'," +
	"'Mercer Island, WA','Woodinville, WA') AND price BETWEEN 200000 AND 400000"

func main() {
	rel := repro.DemoDataset(20000, 1)
	base, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(10000, 2),
		Intervals:   repro.DemoIntervals(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// This buyer renovates old houses: every search she has ever run
	// filters on year built (and often on nothing else).
	history := []string{
		"SELECT * FROM ListProperty WHERE yearbuilt <= 1940",
		"SELECT * FROM ListProperty WHERE yearbuilt BETWEEN 1900 AND 1930 AND neighborhood IN ('Seattle, WA')",
		"SELECT * FROM ListProperty WHERE yearbuilt <= 1950 AND price BETWEEN 200000 AND 300000",
		"SELECT * FROM ListProperty WHERE yearbuilt BETWEEN 1920 AND 1945",
		"SELECT * FROM ListProperty WHERE yearbuilt <= 1935 AND neighborhood IN ('Bellevue, WA')",
	}
	personal, err := base.Personalize(history, 800)
	if err != nil {
		log.Fatal(err)
	}

	for _, sys := range []struct {
		name string
		s    *repro.System
	}{{"aggregate workload", base}, {"personalized (renovator)", personal}} {
		res, err := sys.s.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		tree, err := res.Categorize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s -> levels %v  (yearbuilt usage %.2f)\n",
			sys.name, tree.LevelAttrs, sys.s.Stats().UsageFraction("yearbuilt"))
	}

	fmt.Println("\nThe renovator's tree surfaces year-built as a categorizing attribute;")
	fmt.Println("the aggregate tree never would (usage 0.24 < x = 0.4).")
}
