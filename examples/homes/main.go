// Homes: the paper's running example end-to-end. Runs the "Homes" query
// (Seattle/Bellevue area, $200k-$300k), categorizes the result with all
// three techniques of §6.1, estimates each tree's information overload, and
// replays a buyer's exploration over each tree to compare the items she
// actually examines.
//
//	go run ./examples/homes
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

const homesQuery = "SELECT * FROM ListProperty WHERE " +
	"neighborhood IN ('Seattle, WA','Bellevue, WA','Redmond, WA','Kirkland, WA'," +
	"'Issaquah, WA','Sammamish, WA','Renton, WA','Bothell, WA'," +
	"'Mercer Island, WA','Woodinville, WA') AND price BETWEEN 200000 AND 300000"

// The buyer's true (unstated) interest: Bellevue or Redmond only, a tighter
// price band, at least 3 bedrooms.
const buyerInterest = "SELECT * FROM ListProperty WHERE " +
	"neighborhood IN ('Bellevue, WA','Redmond, WA') " +
	"AND price BETWEEN 225000 AND 275000 AND bedroomcount >= 3"

func main() {
	rel := repro.DemoDataset(20000, 1)
	sys, err := repro.NewSystem(rel, repro.Config{
		WorkloadSQL: repro.DemoWorkloadSQL(10000, 2),
		Intervals:   repro.DemoIntervals(),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Query(homesQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("The Homes query returns %d homes.\n", res.Len())

	interest, err := repro.ParseQuery(buyerInterest)
	if err != nil {
		log.Fatal(err)
	}
	intent := &repro.Intent{Query: interest}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\ntechnique\tlevels\tcategories\test. cost (ALL)\tactually examined\trelevant found\titems/relevant")
	for _, tech := range []repro.Technique{repro.CostBased, repro.AttrCost, repro.NoCost} {
		tree, err := res.CategorizeWith(tech, repro.Options{M: 20})
		if err != nil {
			log.Fatal(err)
		}
		out := repro.SimulateAll(tree, intent)
		fmt.Fprintf(w, "%s\t%v\t%d\t%.0f\t%.0f\t%d/%d\t%.1f\n",
			tech, tree.LevelAttrs, tree.NodeCount(),
			repro.EstimateCostAll(tree), out.Cost(1),
			out.RelevantFound, out.RelevantTotal, out.NormalizedCost(1))
	}
	fmt.Fprintf(w, "no categorization\t—\t0\t%d\t%d\t·\t·\n", res.Len(), res.Len())
	w.Flush()

	tree, err := res.Categorize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCost-based tree (first two levels):\n\n")
	fmt.Print(repro.RenderTree(tree, repro.RenderOptions{MaxDepth: 2, MaxChildren: 4, ShowProbabilities: true}))

	one := repro.SimulateOne(tree, intent)
	fmt.Printf("\nONE scenario: the buyer examines %d labels and %d tuples before the first relevant home (found=%v).\n",
		one.LabelsExamined, one.TuplesExamined, one.Found)
}
